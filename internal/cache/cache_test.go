package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"rocket/internal/sim"
	"rocket/internal/stats"
)

// run executes fn as a single simulation process and drives the env.
func run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e := sim.NewEnv()
	e.Spawn("test", fn)
	e.Run()
	e.Close()
}

func TestMissThenHit(t *testing.T) {
	c := New("dev", 4, 100)
	run(t, func(p *sim.Proc) {
		h, hit := c.Acquire(p, 7)
		if hit || !h.Write {
			t.Fatal("first acquire must be a write-lease miss")
		}
		h.SetData("payload")
		h.Publish(p.Env())
		h2, hit := c.Acquire(p, 7)
		if !hit || h2.Write {
			t.Fatal("second acquire must hit")
		}
		if h2.Data() != "payload" {
			t.Fatalf("data = %v", h2.Data())
		}
		h2.Release(p.Env())
		h.Release(p.Env())
		st := c.Stats()
		if st.Misses != 1 || st.Hits != 1 {
			t.Fatalf("stats = %+v", st)
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLRUEviction(t *testing.T) {
	c := New("dev", 2, 100)
	run(t, func(p *sim.Proc) {
		e := p.Env()
		for _, item := range []int{0, 1} {
			h, _ := c.Acquire(p, item)
			h.Publish(e)
			h.Release(e)
		}
		// Touch 0 so 1 becomes least recently used.
		h, hit := c.Acquire(p, 0)
		if !hit {
			t.Fatal("item 0 should be cached")
		}
		h.Release(e)
		// Insert 2: must evict 1, not 0.
		h2, _ := c.Acquire(p, 2)
		h2.Publish(e)
		h2.Release(e)
		if !c.Contains(0) || c.Contains(1) || !c.Contains(2) {
			t.Fatalf("LRU violated: 0=%v 1=%v 2=%v",
				c.Contains(0), c.Contains(1), c.Contains(2))
		}
		if c.Stats().Evictions != 1 {
			t.Fatalf("evictions = %d", c.Stats().Evictions)
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPinnedSlotNotEvicted(t *testing.T) {
	c := New("dev", 2, 100)
	run(t, func(p *sim.Proc) {
		e := p.Env()
		h0, _ := c.Acquire(p, 0)
		h0.Publish(e) // keep the read lease: slot pinned
		h1, _ := c.Acquire(p, 1)
		h1.Publish(e)
		h1.Release(e)
		// Item 2 must evict item 1 (item 0 is pinned).
		h2, _ := c.Acquire(p, 2)
		h2.Publish(e)
		h2.Release(e)
		if !c.Contains(0) {
			t.Fatal("pinned item was evicted")
		}
		h0.Release(e)
		if err := c.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestWaitersBlockDuringWrite(t *testing.T) {
	c := New("dev", 4, 100)
	e := sim.NewEnv()
	var order []string
	e.Spawn("writer", func(p *sim.Proc) {
		h, hit := c.Acquire(p, 5)
		if hit {
			t.Error("writer expected miss")
		}
		p.Wait(sim.Millis(10)) // simulate the load pipeline
		h.SetData(42)
		h.Publish(p.Env())
		order = append(order, "published")
		h.Release(p.Env())
	})
	for i := 0; i < 3; i++ {
		e.Spawn("reader", func(p *sim.Proc) {
			p.Wait(sim.Millis(1)) // start after the writer
			h, hit := c.Acquire(p, 5)
			if !hit {
				t.Error("reader expected hit after waiting")
			}
			if p.Now() != sim.Millis(10) {
				t.Errorf("reader resumed at %v, want 10ms", p.Now())
			}
			if h.Data() != 42 {
				t.Errorf("reader saw %v", h.Data())
			}
			order = append(order, "read")
			h.Release(p.Env())
		})
	}
	e.Run()
	e.Close()
	if len(order) != 4 || order[0] != "published" {
		t.Fatalf("order = %v", order)
	}
	if c.Stats().WaitHits != 3 {
		t.Fatalf("wait-hits = %d, want 3", c.Stats().WaitHits)
	}
}

func TestAbortLetsWaiterTakeOver(t *testing.T) {
	c := New("dev", 2, 100)
	e := sim.NewEnv()
	var secondWasWriter bool
	e.Spawn("failing", func(p *sim.Proc) {
		h, _ := c.Acquire(p, 3)
		p.Wait(sim.Millis(5))
		h.Abort(p.Env())
	})
	e.Spawn("retry", func(p *sim.Proc) {
		p.Wait(sim.Millis(1))
		h, hit := c.Acquire(p, 3)
		secondWasWriter = !hit
		if !hit {
			h.Publish(p.Env())
		}
		h.Release(p.Env())
	})
	e.Run()
	e.Close()
	if !secondWasWriter {
		t.Fatal("waiter should have become the writer after abort")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStallWhenAllPinned(t *testing.T) {
	c := New("dev", 1, 100)
	e := sim.NewEnv()
	e.Spawn("holder", func(p *sim.Proc) {
		h, _ := c.Acquire(p, 0)
		h.Publish(p.Env())
		p.Wait(sim.Millis(20))
		h.Release(p.Env())
	})
	e.Spawn("blocked", func(p *sim.Proc) {
		p.Wait(sim.Millis(1))
		h, hit := c.Acquire(p, 1) // no free slot until holder releases
		if hit {
			t.Error("expected miss")
		}
		if p.Now() != sim.Millis(20) {
			t.Errorf("acquired at %v, want 20ms", p.Now())
		}
		h.Publish(p.Env())
		h.Release(p.Env())
	})
	e.Run()
	e.Close()
	if c.Stats().Stalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestContainsIgnoresWriting(t *testing.T) {
	c := New("dev", 2, 100)
	run(t, func(p *sim.Proc) {
		h, _ := c.Acquire(p, 9)
		if c.Contains(9) {
			t.Error("Contains true during WRITE")
		}
		h.Publish(p.Env())
		if !c.Contains(9) {
			t.Error("Contains false after publish")
		}
		h.Release(p.Env())
	})
}

func TestZeroCapacityPanicsOnAcquire(t *testing.T) {
	c := New("dev", 0, 100)
	if c.Cap() != 0 {
		t.Fatal("capacity should be 0")
	}
	run(t, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Acquire(p, 1)
	})
}

func TestMisuseHandlePanics(t *testing.T) {
	c := New("dev", 2, 100)
	run(t, func(p *sim.Proc) {
		e := p.Env()
		h, _ := c.Acquire(p, 0)
		h.Publish(e)
		h.Release(e)
		mustPanic(t, "double release", func() { h.Release(e) })
		h2, hit := c.Acquire(p, 0)
		if !hit {
			t.Fatal("expected hit")
		}
		mustPanic(t, "publish read lease", func() { h2.Publish(e) })
		mustPanic(t, "abort read lease", func() { h2.Abort(e) })
		mustPanic(t, "setdata on read lease", func() { h2.SetData(1) })
		h2.Release(e)
		mustPanic(t, "release unpublished write", func() {
			h3, _ := c.Acquire(p, 5)
			h3.Release(e)
		})
		mustPanic(t, "negative item", func() { c.Acquire(p, -1) })
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestResidentAndAccessors(t *testing.T) {
	c := New("host", 3, 555)
	if c.Name() != "host" || c.SlotSize() != 555 {
		t.Fatal("accessors wrong")
	}
	run(t, func(p *sim.Proc) {
		h, _ := c.Acquire(p, 1)
		if c.Resident() != 1 {
			t.Fatalf("resident = %d", c.Resident())
		}
		h.Publish(p.Env())
		h.Release(p.Env())
	})
}

func TestRandomEvictionPolicy(t *testing.T) {
	c := NewWithPolicy("rnd", 3, 100, PolicyRandom, stats.NewRNG(1))
	run(t, func(p *sim.Proc) {
		e := p.Env()
		// Fill the cache; empties must be consumed before live data.
		for item := 0; item < 3; item++ {
			h, hit := c.Acquire(p, item)
			if hit {
				t.Fatalf("unexpected hit for %d", item)
			}
			h.Publish(e)
			h.Release(e)
		}
		if c.Stats().Evictions != 0 {
			t.Fatal("evicted live data while empty slots existed")
		}
		// Further inserts evict something, and invariants hold.
		for item := 3; item < 30; item++ {
			h, _ := c.Acquire(p, item)
			h.Publish(e)
			h.Release(e)
			if err := c.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		if c.Stats().Evictions != 27 {
			t.Fatalf("evictions = %d, want 27", c.Stats().Evictions)
		}
	})
}

func TestRandomPolicyRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWithPolicy("bad", 2, 1, PolicyRandom, nil)
}

func TestRandomEvictionDiffersFromLRU(t *testing.T) {
	// Under a cyclic scan over capacity+1 items, LRU always misses; random
	// eviction eventually hits.
	lru := New("lru", 4, 1)
	rnd := NewWithPolicy("rnd", 4, 1, PolicyRandom, stats.NewRNG(7))
	run(t, func(p *sim.Proc) {
		e := p.Env()
		for round := 0; round < 40; round++ {
			for item := 0; item < 5; item++ {
				for _, c := range []*Cache{lru, rnd} {
					h, hit := c.Acquire(p, item)
					if !hit {
						h.Publish(e)
					}
					h.Release(e)
				}
			}
		}
	})
	if lru.Stats().Hits != 0 {
		t.Fatalf("LRU hits on cyclic scan = %d, want 0", lru.Stats().Hits)
	}
	if rnd.Stats().Hits == 0 {
		t.Fatal("random eviction never hit on cyclic scan")
	}
}

// Property: under a random access workload the cache never exceeds
// capacity, invariants hold after every operation, and hits+misses+waits
// match the number of acquisitions.
func TestQuickRandomWorkloadInvariants(t *testing.T) {
	f := func(seed uint64, capRaw, itemsRaw uint8) bool {
		capacity := int(capRaw%8) + 2
		items := int(itemsRaw%20) + 1
		c := New("q", capacity, 10)
		rng := stats.NewRNG(seed)
		e := sim.NewEnv()
		ok := true
		var acquisitions uint64
		for w := 0; w < 4; w++ {
			e.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < 50; i++ {
					item := rng.Intn(items)
					h, hit := c.Acquire(p, item)
					acquisitions++
					if !hit {
						p.Wait(sim.Time(rng.Intn(3)) * sim.Microsecond)
						if rng.Intn(10) == 0 {
							h.Abort(p.Env())
							if err := c.checkInvariants(); err != nil {
								ok = false
							}
							continue
						}
						h.Publish(p.Env())
					}
					p.Wait(sim.Time(rng.Intn(3)) * sim.Microsecond)
					h.Release(p.Env())
					if err := c.checkInvariants(); err != nil {
						ok = false
					}
					if c.Resident() > capacity {
						ok = false
					}
				}
			})
		}
		e.Run()
		e.Close()
		st := c.Stats()
		if st.Hits+st.Misses > acquisitions {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestItemsSortedAndLimited(t *testing.T) {
	c := New("items", 5, 1)
	run(t, func(p *sim.Proc) {
		e := p.Env()
		for _, item := range []int{9, 2, 7} {
			h, _ := c.Acquire(p, item)
			h.Publish(e)
			h.Release(e)
		}
		// An item mid-write must not be listed.
		w, _ := c.Acquire(p, 5)
		got := c.Items(0)
		if len(got) != 3 || got[0] != 2 || got[1] != 7 || got[2] != 9 {
			t.Fatalf("Items = %v, want [2 7 9]", got)
		}
		if lim := c.Items(2); len(lim) != 2 {
			t.Fatalf("limited Items = %v", lim)
		}
		w.Publish(e)
		w.Release(e)
	})
}

func TestWarm(t *testing.T) {
	c := New("warm", 2, 1)
	if !c.Warm(4, "x") {
		t.Fatal("warm into empty cache failed")
	}
	if c.Warm(4, "x") {
		t.Fatal("duplicate warm accepted")
	}
	if !c.Warm(5, "y") {
		t.Fatal("second warm failed")
	}
	if c.Warm(6, "z") {
		t.Fatal("warm evicted live data")
	}
	if !c.Contains(4) || !c.Contains(5) {
		t.Fatal("warmed items not resident")
	}
	run(t, func(p *sim.Proc) {
		h, hit := c.Acquire(p, 4)
		if !hit || h.Data() != "x" {
			t.Fatalf("warmed item: hit=%v data=%v", hit, h.Data())
		}
		h.Release(p.Env())
	})
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireFuncMirrorsAcquire(t *testing.T) {
	// The same miss/hit/write-wait sequence through both APIs must produce
	// identical stats and grant times.
	run := func(callback bool) (Stats, []sim.Time) {
		e := sim.NewEnv()
		c := New("c", 1, 1)
		var times []sim.Time
		acquire := func(item int, hold sim.Time) {
			if callback {
				c.AcquireFunc(e, item, func(h *Handle, hit bool) {
					times = append(times, e.Now())
					if !hit {
						e.After(hold, func() {
							h.Publish(e)
							h.Release(e)
						})
						return
					}
					h.Release(e)
				})
				return
			}
			e.Spawn("a", func(p *sim.Proc) {
				h, hit := c.Acquire(p, item)
				times = append(times, p.Now())
				if !hit {
					p.Wait(hold)
					h.Publish(p.Env())
				}
				h.Release(p.Env())
			})
		}
		acquire(7, sim.Millis(5)) // miss: write lease, published at 5ms
		acquire(7, 0)             // wait-hit: blocked until publish
		e.Run()
		e.Close()
		return c.Stats(), times
	}
	procStats, procTimes := run(false)
	cbStats, cbTimes := run(true)
	if procStats != cbStats {
		t.Fatalf("stats diverge: proc %+v vs callback %+v", procStats, cbStats)
	}
	if fmt.Sprint(procTimes) != fmt.Sprint(cbTimes) {
		t.Fatalf("grant times diverge: proc %v vs callback %v", procTimes, cbTimes)
	}
	if cbStats.WaitHits != 1 || cbStats.Misses != 1 {
		t.Fatalf("unexpected stats %+v", cbStats)
	}
}

func TestAcquireFuncWaitsForFreeSlot(t *testing.T) {
	e := sim.NewEnv()
	c := New("c", 1, 1)
	h, hit := writeAndPublish(t, e, c, 1)
	if hit {
		t.Fatal("first acquire hit")
	}
	var grantedAt sim.Time
	granted := false
	c.AcquireFunc(e, 2, func(h2 *Handle, hit bool) {
		granted, grantedAt = true, e.Now()
		if hit {
			t.Error("item 2 cannot hit")
		}
		h2.Publish(e)
		h2.Release(e)
	})
	if granted {
		t.Fatal("AcquireFunc granted while every slot was pinned")
	}
	e.After(sim.Millis(3), func() { h.Release(e) })
	e.Run()
	e.Close()
	if !granted || grantedAt != sim.Millis(3) {
		t.Fatalf("granted=%v at %v, want grant at 3ms", granted, grantedAt)
	}
	if c.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", c.Stats().Stalls)
	}
}

// writeAndPublish inserts item via a write lease and publishes it, keeping
// the read lease (pinning the slot).
func writeAndPublish(t *testing.T, e *sim.Env, c *Cache, item int) (*Handle, bool) {
	t.Helper()
	var h *Handle
	var hit bool
	c.AcquireFunc(e, item, func(got *Handle, gotHit bool) {
		h, hit = got, gotHit
		if !gotHit {
			got.Publish(e)
		}
	})
	if h == nil {
		t.Fatal("acquire did not complete inline on an empty cache")
	}
	return h, hit
}
