// Package cache implements the software-managed slot cache used at the
// first (device) and second (host) levels of Rocket's memory hierarchy
// (paper §4.1.1–4.1.2).
//
// A cache manages a fixed number of fixed-size slots. Each slot holds one
// item and is either being written (WRITE: one writer filling it) or
// readable (READ: n concurrent readers). On a miss the least-recently-used
// unpinned slot is evicted and handed to the requester as a write lease;
// jobs that request an item mid-write block until the writer publishes.
// All waiting is in virtual time via internal/sim.
package cache

import (
	"fmt"
	"sort"

	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Policy selects the eviction victim among unpinned slots.
type Policy int

const (
	// PolicyLRU evicts the least-recently-used unpinned slot (the paper's
	// policy, §4.1.1).
	PolicyLRU Policy = iota
	// PolicyRandom evicts a uniformly random unpinned slot; used by the
	// eviction ablation to quantify how much LRU contributes to data
	// reuse under the divide-and-conquer traversal.
	PolicyRandom
)

// state of a slot.
type state int

const (
	stateEmpty state = iota
	stateWrite
	stateRead
)

type slot struct {
	item    int // -1 when empty
	st      state
	readers int
	data    interface{} // optional payload (real-kernel mode)
	// prev/next link the slot into the LRU ring while evictable; both are
	// nil while the slot is pinned or mid-write. Intrusive links avoid a
	// container/list element allocation on every pin/release cycle.
	prev, next *slot
	// turned becomes non-nil while a writer is filling the slot; waiters
	// block on it and re-check state when it fires.
	turned *sim.Signal
}

// lruList is an intrusive doubly-linked list of evictable slots, least
// recently used at the front. The zero value is not ready; call init.
type lruList struct {
	root slot // sentinel: root.next is the front, root.prev the back
	n    int
}

func (l *lruList) init() {
	l.root.next = &l.root
	l.root.prev = &l.root
}

func (l *lruList) len() int { return l.n }

// front returns the least-recently-used slot, or nil when empty.
func (l *lruList) front() *slot {
	if l.n == 0 {
		return nil
	}
	return l.root.next
}

func (l *lruList) insert(s, after *slot) {
	s.prev = after
	s.next = after.next
	s.prev.next = s
	s.next.prev = s
	l.n++
}

// pushBack appends s at the most-recently-used end.
func (l *lruList) pushBack(s *slot) { l.insert(s, l.root.prev) }

// pushFront prepends s at the least-recently-used end.
func (l *lruList) pushFront(s *slot) { l.insert(s, &l.root) }

// remove unlinks s; s.onList() turns false.
func (l *lruList) remove(s *slot) {
	s.prev.next = s.next
	s.next.prev = s.prev
	s.prev = nil
	s.next = nil
	l.n--
}

// moveToBack re-positions s at the most-recently-used end.
func (l *lruList) moveToBack(s *slot) {
	l.remove(s)
	l.pushBack(s)
}

// onList reports whether the slot is linked into the LRU ring.
func (s *slot) onList() bool { return s.next != nil }

// Stats counts cache activity.
type Stats struct {
	Hits      uint64 // item present in READ state
	WaitHits  uint64 // item present but in WRITE state; requester waited
	Misses    uint64 // item absent; write lease issued
	Evictions uint64 // slots whose previous content was discarded
	Stalls    uint64 // acquisitions that had to wait for a free slot
}

// waiter is a party blocked because every slot was pinned: a parked
// process or a retry callback. Exactly one of p and fn is set.
type waiter struct {
	p  *sim.Proc
	fn func()
}

// Cache is a fixed-capacity slot cache. It is not safe for OS-level
// concurrency; all access happens in simulation context (processes or
// scheduler callbacks).
type Cache struct {
	name     string
	slotSize int64
	slots    []*slot
	index    map[int]*slot
	// lru holds evictable slots (READ with zero readers, or empty), least
	// recently used at the front.
	lru lruList
	// freeWaiters are parties blocked because every slot was pinned.
	freeWaiters []waiter
	stats       Stats
	policy      Policy
	rng         *stats.RNG
}

// New returns an LRU cache with the given number of slots, each slotSize
// bytes. Capacity zero is allowed and behaves as a cache that always
// misses with no slot to give — callers must handle Acquire never
// succeeding, so the runtime treats a zero-capacity cache as "disabled"
// before calling.
func New(name string, capacity int, slotSize int64) *Cache {
	return NewWithPolicy(name, capacity, slotSize, PolicyLRU, nil)
}

// NewWithPolicy returns a cache with an explicit eviction policy.
// PolicyRandom requires a generator; PolicyLRU ignores it.
func NewWithPolicy(name string, capacity int, slotSize int64, policy Policy, rng *stats.RNG) *Cache {
	if capacity < 0 {
		panic(fmt.Sprintf("cache %q: negative capacity %d", name, capacity))
	}
	if policy == PolicyRandom && rng == nil {
		panic(fmt.Sprintf("cache %q: PolicyRandom requires an RNG", name))
	}
	c := &Cache{
		name:     name,
		slotSize: slotSize,
		index:    make(map[int]*slot, capacity),
		policy:   policy,
		rng:      rng,
	}
	c.lru.init()
	for i := 0; i < capacity; i++ {
		s := &slot{item: -1, st: stateEmpty}
		c.lru.pushBack(s)
		c.slots = append(c.slots, s)
	}
	return c
}

// Name returns the cache name.
func (c *Cache) Name() string { return c.name }

// Cap returns the number of slots.
func (c *Cache) Cap() int { return len(c.slots) }

// SlotSize returns the configured slot size in bytes.
func (c *Cache) SlotSize() int64 { return c.slotSize }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether item is present in READ state (a peek that does
// not pin or touch LRU order), used by the distributed cache server.
func (c *Cache) Contains(item int) bool {
	s, ok := c.index[item]
	return ok && s.st == stateRead
}

// Resident returns the number of items currently stored (READ or WRITE).
func (c *Cache) Resident() int { return len(c.index) }

// Items returns up to max resident READ items in ascending order (0 = no
// limit). Used by cache-aware stealing to describe a node's working set.
func (c *Cache) Items(max int) []int {
	out := make([]int, 0, len(c.index))
	for item, s := range c.index {
		if s.st == stateRead {
			out = append(out, item)
		}
	}
	sort.Ints(out)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Warm inserts an item directly in READ state without charging any
// pipeline cost, taking an evictable slot. It models a persistent cache
// surviving from a previous run. It reports false when the item is
// already present or no slot is free, and must only be used during
// initialization (before any process blocks on the cache).
func (c *Cache) Warm(item int, data interface{}) bool {
	if item < 0 {
		panic(fmt.Sprintf("cache %q: negative item %d", c.name, item))
	}
	if _, ok := c.index[item]; ok {
		return false
	}
	s := c.lru.front()
	if s == nil {
		return false
	}
	if s.item >= 0 {
		// Warming never evicts live data; it only consumes empty slots.
		return false
	}
	s.item = item
	s.st = stateRead
	s.readers = 0
	s.data = data
	c.index[item] = s
	c.lru.moveToBack(s)
	return true
}

// Peek returns the payload of an item in READ state without pinning it or
// touching LRU order. It returns nil when the item is absent or being
// written. Peeked payloads must be immutable: they may be shared with a
// concurrent eviction.
func (c *Cache) Peek(item int) interface{} {
	s, ok := c.index[item]
	if !ok || s.st != stateRead {
		return nil
	}
	return s.data
}

// Handle is a lease on a slot. A read lease (Write == false) grants access
// to the slot's data until Release. A write lease (Write == true) obliges
// the holder to fill the slot and then call Publish (keeping a read lease)
// or Abort.
type Handle struct {
	c     *Cache
	s     *slot
	item  int
	Write bool
	done  bool
}

// Item returns the item this handle refers to.
func (h *Handle) Item() int { return h.item }

// Data returns the slot payload (valid for read leases and for write
// leases after SetData).
func (h *Handle) Data() interface{} { return h.s.data }

// SetData stores the payload into the slot. Only the write-lease holder
// may call it.
func (h *Handle) SetData(d interface{}) {
	if !h.Write {
		panic("cache: SetData on read lease")
	}
	h.s.data = d
}

// Acquire obtains item from the cache. The boolean reports a hit: when
// true, the returned handle is a read lease; when false the item was
// absent and the handle is a write lease on a freshly assigned slot.
// Acquire blocks while the item is being written by another job, and
// blocks when no slot can be evicted (every slot pinned).
func (c *Cache) Acquire(p *sim.Proc, item int) (*Handle, bool) {
	c.validateAcquire(item)
	for {
		h, hit, turn := c.tryOnce(item)
		if h != nil {
			return h, hit
		}
		if turn != nil {
			// Another job is loading this item; wait for the turn signal,
			// then retry (the write may have been aborted).
			p.WaitSignal(turn)
			continue
		}
		c.freeWaiters = append(c.freeWaiters, waiter{p: p})
		p.Park()
	}
}

// AcquireFunc is the callback analogue of Acquire: fn receives the handle
// and hit flag once the item is available. When the item is resident in
// READ state, or a slot is immediately evictable, fn runs inline before
// AcquireFunc returns — mirroring Acquire's non-blocking paths. Otherwise
// fn is re-attempted in scheduler context each time the blocking condition
// (a write in progress, or every slot pinned) clears. fn must not block.
func (c *Cache) AcquireFunc(e *sim.Env, item int, fn func(h *Handle, hit bool)) {
	c.validateAcquire(item)
	c.acquireStep(e, item, fn)
}

func (c *Cache) acquireStep(e *sim.Env, item int, fn func(h *Handle, hit bool)) {
	h, hit, turn := c.tryOnce(item)
	if h != nil {
		fn(h, hit)
		return
	}
	retry := func() { c.acquireStep(e, item, fn) }
	if turn != nil {
		turn.OnFire(e, retry)
		return
	}
	c.freeWaiters = append(c.freeWaiters, waiter{fn: retry})
}

func (c *Cache) validateAcquire(item int) {
	if len(c.slots) == 0 {
		panic(fmt.Sprintf("cache %q: Acquire on zero-capacity cache", c.name))
	}
	if item < 0 {
		panic(fmt.Sprintf("cache %q: negative item %d", c.name, item))
	}
}

// tryOnce performs one non-blocking acquisition attempt. It returns a
// handle on success; a turn signal when the item is mid-write; or neither
// when every slot is pinned (the caller must park on freeWaiters).
func (c *Cache) tryOnce(item int) (*Handle, bool, *sim.Signal) {
	if s, ok := c.index[item]; ok {
		switch s.st {
		case stateRead:
			c.stats.Hits++
			c.pin(s)
			return &Handle{c: c, s: s, item: item}, true, nil
		case stateWrite:
			c.stats.WaitHits++
			return nil, false, s.turned
		default:
			panic(fmt.Sprintf("cache %q: indexed slot in empty state", c.name))
		}
	}
	// Miss: take an evictable slot per the configured policy.
	s := c.victim()
	if s == nil {
		c.stats.Stalls++
		return nil, false, nil
	}
	c.lru.remove(s)
	if s.item >= 0 {
		c.stats.Evictions++
		delete(c.index, s.item)
	}
	c.stats.Misses++
	s.item = item
	s.st = stateWrite
	s.readers = 0
	s.data = nil
	s.turned = sim.NewSignal()
	c.index[item] = s
	return &Handle{c: c, s: s, item: item, Write: true}, false, nil
}

// victim selects the slot to evict: the list front for LRU (least
// recently used), or a uniformly random list element for PolicyRandom.
// Empty slots are still preferred under PolicyRandom: evicting live data
// while free slots exist would be strictly wasteful.
func (c *Cache) victim() *slot {
	if c.policy == PolicyLRU || c.lru.len() <= 1 {
		return c.lru.front()
	}
	if front := c.lru.front(); front.item < 0 {
		return front
	}
	k := c.rng.Intn(c.lru.len())
	s := c.lru.front()
	for i := 0; i < k; i++ {
		s = s.next
	}
	return s
}

// pin marks one more reader on a READ slot, removing it from the LRU list
// if it was evictable.
func (c *Cache) pin(s *slot) {
	s.readers++
	if s.onList() {
		c.lru.remove(s)
	}
}

// Publish transitions a write lease to READ state and downgrades the
// handle to a read lease, waking all jobs waiting on the item.
func (h *Handle) Publish(e *sim.Env) {
	if !h.Write || h.done {
		panic("cache: Publish on non-write or finished handle")
	}
	h.Write = false
	s := h.s
	s.st = stateRead
	s.readers = 1
	turned := s.turned
	s.turned = nil
	turned.Fire(e)
}

// Abort cancels a write lease (for example the load failed); the slot
// returns to empty and waiters retry.
func (h *Handle) Abort(e *sim.Env) {
	if !h.Write || h.done {
		panic("cache: Abort on non-write or finished handle")
	}
	h.done = true
	c, s := h.c, h.s
	delete(c.index, s.item)
	s.item = -1
	s.st = stateEmpty
	s.readers = 0
	s.data = nil
	turned := s.turned
	s.turned = nil
	c.lru.pushFront(s) // empty slots are the first eviction choice
	turned.Fire(e)
	c.wakeFreeWaiters(e)
}

// Release ends a read lease. When the last reader leaves, the slot becomes
// evictable and is appended at the most-recently-used end.
func (h *Handle) Release(e *sim.Env) {
	if h.Write {
		panic("cache: Release on unpublished write lease (Publish or Abort first)")
	}
	if h.done {
		panic("cache: double Release")
	}
	h.done = true
	c, s := h.c, h.s
	if s.readers <= 0 {
		panic(fmt.Sprintf("cache %q: release with no readers", c.name))
	}
	s.readers--
	if s.readers == 0 {
		c.lru.pushBack(s)
		c.wakeFreeWaiters(e)
	}
}

func (c *Cache) wakeFreeWaiters(e *sim.Env) {
	if len(c.freeWaiters) == 0 {
		return
	}
	waiters := c.freeWaiters
	c.freeWaiters = nil
	for _, w := range waiters {
		if w.p != nil {
			e.Unpark(w.p)
		} else {
			e.Defer(w.fn)
		}
	}
}

// checkInvariants validates internal consistency; used by tests.
func (c *Cache) checkInvariants() error {
	resident := 0
	evictable := 0
	for _, s := range c.slots {
		if s.item >= 0 {
			resident++
			if c.index[s.item] != s {
				return fmt.Errorf("slot item %d not indexed", s.item)
			}
		}
		switch s.st {
		case stateWrite:
			if s.readers != 0 {
				return fmt.Errorf("WRITE slot with %d readers", s.readers)
			}
			if s.onList() {
				return fmt.Errorf("WRITE slot on LRU list")
			}
			if s.turned == nil {
				return fmt.Errorf("WRITE slot without turn signal")
			}
		case stateRead:
			if s.readers > 0 && s.onList() {
				return fmt.Errorf("pinned slot on LRU list")
			}
			if s.readers == 0 && !s.onList() {
				return fmt.Errorf("unpinned READ slot missing from LRU list")
			}
		case stateEmpty:
			if s.item != -1 || s.readers != 0 {
				return fmt.Errorf("dirty empty slot")
			}
			if !s.onList() {
				return fmt.Errorf("empty slot missing from LRU list")
			}
		}
		if s.onList() {
			evictable++
		}
	}
	if resident != len(c.index) {
		return fmt.Errorf("index size %d != resident %d", len(c.index), resident)
	}
	if evictable != c.lru.len() {
		return fmt.Errorf("lru list length %d != evictable %d", c.lru.len(), evictable)
	}
	return nil
}
