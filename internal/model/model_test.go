package model

import (
	"testing"
	"testing/quick"

	"rocket/internal/sim"
)

var c = Costs{
	Parse:      sim.Millis(130.8),
	Preprocess: sim.Millis(20.5),
	Compare:    sim.Millis(1.1),
	Post:       0,
	FileBytes:  4.1e6,
}

func TestTGPU(t *testing.T) {
	// n=10, R=1: 10 preprocess + 45 comparisons.
	want := 10*sim.Millis(20.5) + 45*sim.Millis(1.1)
	if got := TGPU(c, 10, 1); got != want {
		t.Fatalf("TGPU = %v, want %v", got, want)
	}
	// R=2 doubles only the preprocess share.
	want2 := 20*sim.Millis(20.5) + 45*sim.Millis(1.1)
	if got := TGPU(c, 10, 2); got != want2 {
		t.Fatalf("TGPU(R=2) = %v, want %v", got, want2)
	}
}

func TestTCPU(t *testing.T) {
	want := 10 * sim.Millis(130.8)
	if got := TCPU(c, 10, 1); got != want {
		t.Fatalf("TCPU = %v, want %v", got, want)
	}
}

func TestTIO(t *testing.T) {
	got := TIO(c, 10, 1, 4.1e6) // 10 files at file-size bandwidth = 10s
	if got != 10*sim.Second {
		t.Fatalf("TIO = %v, want 10s", got)
	}
	if TIO(c, 10, 1, 0) != 0 {
		t.Fatal("zero bandwidth should yield 0 (treated as infinite)")
	}
}

func TestTminEqualsTGPUAtR1(t *testing.T) {
	if Tmin(c, 100) != TGPU(c, 100, 1) {
		t.Fatal("Tmin != TGPU(R=1)")
	}
}

func TestTminOnScalesWithSpeed(t *testing.T) {
	t1 := TminOn(c, 100, 1)
	t4 := TminOn(c, 100, 4)
	if t1 != 4*t4 {
		t.Fatalf("TminOn(4) = %v, want quarter of %v", t4, t1)
	}
	if TminOn(c, 100, 0) != 0 {
		t.Fatal("zero speed should yield 0")
	}
}

func TestEfficiency(t *testing.T) {
	bound := Tmin(c, 50)
	if got := Efficiency(c, 50, 1, bound); got != 1 {
		t.Fatalf("efficiency at bound = %v, want 1", got)
	}
	if got := Efficiency(c, 50, 1, 2*bound); got != 0.5 {
		t.Fatalf("efficiency at 2x bound = %v, want 0.5", got)
	}
	if Efficiency(c, 50, 1, 0) != 0 {
		t.Fatal("zero measured time must not divide by zero")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10*sim.Second, 2*sim.Second) != 5 {
		t.Fatal("speedup wrong")
	}
	if Speedup(time1(), 0) != 0 {
		t.Fatal("zero denominator")
	}
}

func time1() sim.Time { return sim.Second }

// Property: efficiency is monotonically decreasing in measured time and
// TGPU is monotonically increasing in R.
func TestQuickMonotonicity(t *testing.T) {
	f := func(nRaw uint8, r1Raw, r2Raw uint16) bool {
		n := int(nRaw%100) + 2
		r1 := 1 + float64(r1Raw)/1000
		r2 := r1 + float64(r2Raw)/1000
		if TGPU(c, n, r2) < TGPU(c, n, r1) {
			return false
		}
		m1 := Tmin(c, n)
		return Efficiency(c, n, 1, m1) >= Efficiency(c, n, 1, m1+sim.Second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
