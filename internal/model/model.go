// Package model implements the paper's performance model (§6.1,
// equations 1-5): lower bounds on run time for a hypothetical system with
// perfect data reuse (R = 1), infinite I/O bandwidth, and perfectly
// overlapped processing, plus the derived system-efficiency metric.
package model

import (
	"rocket/internal/pairs"
	"rocket/internal/sim"
)

// Costs are the mean per-stage durations of an application on the
// reference GPU, matching Table 1.
type Costs struct {
	Parse      sim.Time // CPU, per item
	Preprocess sim.Time // GPU, per item
	Compare    sim.Time // GPU, per pair
	Post       sim.Time // CPU, per pair
	// FileBytes is the mean on-disk file size, for the I/O estimate.
	FileBytes float64
}

// TGPU returns equation (1): total GPU processing time for n items with
// data-reuse factor R on a single reference GPU.
func TGPU(c Costs, n int, r float64) sim.Time {
	loads := r * float64(n)
	return sim.Time(loads*float64(c.Preprocess)) +
		sim.Time(float64(pairs.TotalPairs(n))*float64(c.Compare))
}

// TCPU returns equation (2): total CPU processing time.
func TCPU(c Costs, n int, r float64) sim.Time {
	loads := r * float64(n)
	return sim.Time(loads*float64(c.Parse)) +
		sim.Time(float64(pairs.TotalPairs(n))*float64(c.Post))
}

// TIO returns equation (3): estimated I/O time given an average storage
// bandwidth in bytes/second.
func TIO(c Costs, n int, r float64, bandwidth float64) sim.Time {
	if bandwidth <= 0 {
		return 0
	}
	bytes := r * float64(n) * c.FileBytes
	return sim.Seconds(bytes / bandwidth)
}

// Tmin returns equation (4): the lower bound on run time assuming perfect
// reuse (R = 1), infinite I/O bandwidth, and GPU-dominated processing, on
// one reference GPU.
func Tmin(c Costs, n int) sim.Time {
	return TGPU(c, n, 1)
}

// TminOn returns the lower bound on a platform with the given total
// relative GPU speed (sum of per-device speeds, reference GPU = 1.0). This
// generalizes Tmin/p to heterogeneous platforms: p identical reference
// GPUs have totalSpeed = p.
func TminOn(c Costs, n int, totalSpeed float64) sim.Time {
	if totalSpeed <= 0 {
		return 0
	}
	return sim.Time(float64(Tmin(c, n)) / totalSpeed)
}

// Efficiency returns equation (5): the ratio of the modeled lower bound on
// the given platform to the measured run time. Values are in (0, 1] for
// systems respecting the bound; super-linear effects can push measured
// runs of larger platforms above smaller ones but never above the bound.
func Efficiency(c Costs, n int, totalSpeed float64, measured sim.Time) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(TminOn(c, n, totalSpeed)) / float64(measured)
}

// Speedup returns t1/tp.
func Speedup(t1, tp sim.Time) float64 {
	if tp <= 0 {
		return 0
	}
	return float64(t1) / float64(tp)
}
