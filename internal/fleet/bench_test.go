package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkShardScaling reports events/sec for the same 1024-node fleet at
// widths 1, 2, 4, 8. The simulated workload is identical at every width
// (the Result hash is asserted equal), so the events/sec ratio is pure
// engine speedup.
func BenchmarkShardScaling(b *testing.B) {
	var base Result
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				r, err := Run(ScalingConfig(shards))
				if err != nil {
					b.Fatal(err)
				}
				events = r.Events
				if shards == 1 {
					base = r
				} else if base.StateHash != 0 && r.StateHash != base.StateHash {
					b.Fatalf("shards=%d hash diverged from shards=1", shards)
				}
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
