package fleet

import (
	"testing"

	"rocket/internal/fault"
	"rocket/internal/sim"
)

// smallConfig keeps unit-test runs fast while still exercising every
// protocol (heartbeat, gossip, steal) across shard boundaries.
func smallConfig(shards int) Config {
	cfg := DefaultConfig(64)
	cfg.Shards = shards
	cfg.Duration = sim.Millis(5)
	return cfg
}

func TestFleetRuns(t *testing.T) {
	r, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Heartbeats == 0 || r.Rumors == 0 || r.WorkDone == 0 {
		t.Fatalf("workload did not exercise all protocols: %+v", r)
	}
	if r.Messages == 0 || r.BytesSent == 0 {
		t.Fatalf("no fabric traffic: %+v", r)
	}
	if r.VirtualTime != sim.Millis(5) {
		t.Fatalf("VirtualTime = %v, want 5ms", r.VirtualTime)
	}
}

// TestFleetShardInvariance is the workload-level determinism property:
// the full Result line is bit-identical at widths 1, 2, 4, 8.
func TestFleetShardInvariance(t *testing.T) {
	base, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		r, err := Run(smallConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != base.String() {
			t.Fatalf("shards=%d diverged:\n  %s\nvs shards=1:\n  %s", k, r, base)
		}
	}
}

// TestFleetFaultShardInvariance repeats the property with node crashes and
// restarts routed to owning shards.
func TestFleetFaultShardInvariance(t *testing.T) {
	mk := func(shards int) Config {
		cfg := smallConfig(shards)
		cfg.Faults = new(fault.Schedule).
			Crash(3, sim.Millis(1)).
			Crash(17, sim.Micros(1500)).
			Restart(3, sim.Millis(3)).
			Crash(40, sim.Millis(2)).
			Restart(40, sim.Millis(4))
		return cfg
	}
	base, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Dropped == 0 {
		t.Fatalf("crashes caused no drops: %+v", base)
	}
	for _, k := range []int{2, 4, 8} {
		r, err := Run(mk(k))
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != base.String() {
			t.Fatalf("faulty shards=%d diverged:\n  %s\nvs shards=1:\n  %s", k, r, base)
		}
	}
}

func TestFleetSeedSensitivity(t *testing.T) {
	a, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.StateHash == b.StateHash {
		t.Fatal("different seeds produced identical state hashes")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{Nodes: 1}); err == nil {
		t.Fatal("Nodes=1 accepted")
	}
	cfg := DefaultConfig(4)
	cfg.NetLatency = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero NetLatency accepted")
	}
	cfg = DefaultConfig(4)
	cfg.HeartbeatPeriod = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero HeartbeatPeriod accepted")
	}
}
