package fleet

import (
	"fmt"
	"testing"

	"rocket/internal/fault"
	"rocket/internal/sim"
)

// smallConfig keeps unit-test runs fast while still exercising every
// protocol (heartbeat, gossip, steal) across shard boundaries.
func smallConfig(shards int) Config {
	cfg := DefaultConfig(64)
	cfg.Shards = shards
	cfg.Duration = sim.Millis(5)
	return cfg
}

func TestFleetRuns(t *testing.T) {
	r, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Heartbeats == 0 || r.Rumors == 0 || r.WorkDone == 0 {
		t.Fatalf("workload did not exercise all protocols: %+v", r)
	}
	if r.Messages == 0 || r.BytesSent == 0 {
		t.Fatalf("no fabric traffic: %+v", r)
	}
	if r.VirtualTime != sim.Millis(5) {
		t.Fatalf("VirtualTime = %v, want 5ms", r.VirtualTime)
	}
}

// TestFleetShardInvariance is the workload-level determinism property:
// the full Result line is bit-identical at widths 1, 2, 4, 8.
func TestFleetShardInvariance(t *testing.T) {
	base, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		r, err := Run(smallConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != base.String() {
			t.Fatalf("shards=%d diverged:\n  %s\nvs shards=1:\n  %s", k, r, base)
		}
	}
}

// TestFleetFaultShardInvariance repeats the property with node crashes and
// restarts routed to owning shards.
func TestFleetFaultShardInvariance(t *testing.T) {
	mk := func(shards int) Config {
		cfg := smallConfig(shards)
		cfg.Faults = new(fault.Schedule).
			Crash(3, sim.Millis(1)).
			Crash(17, sim.Micros(1500)).
			Restart(3, sim.Millis(3)).
			Crash(40, sim.Millis(2)).
			Restart(40, sim.Millis(4))
		return cfg
	}
	base, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Dropped == 0 {
		t.Fatalf("crashes caused no drops: %+v", base)
	}
	for _, k := range []int{2, 4, 8} {
		r, err := Run(mk(k))
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != base.String() {
			t.Fatalf("faulty shards=%d diverged:\n  %s\nvs shards=1:\n  %s", k, r, base)
		}
	}
}

func TestFleetSeedSensitivity(t *testing.T) {
	a, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.StateHash == b.StateHash {
		t.Fatal("different seeds produced identical state hashes")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{Nodes: 1}); err == nil {
		t.Fatal("Nodes=1 accepted")
	}
	cfg := DefaultConfig(4)
	cfg.NetLatency = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero NetLatency accepted")
	}
	cfg = DefaultConfig(4)
	cfg.HeartbeatPeriod = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero HeartbeatPeriod accepted")
	}
}

// elasticConfig is the churny fleet the elasticity width-invariance
// property runs: a quarter of the fleet present at boot, wave arrivals,
// and a preemption storm.
func elasticConfig(shards int) Config {
	cfg := smallConfig(shards)
	cfg.Elastic = &fault.Elasticity{
		InitialNodes:    16,
		Arrival:         fault.ArrivalWave,
		Waves:           4,
		ColdStartJitter: sim.Micros(200),
		PreemptFraction: 0.25,
		PreemptAfter:    sim.Millis(1),
	}
	return cfg
}

// TestFleetElasticShardInvariance is the tentpole determinism property:
// a run with joins and preemptions is bit-identical at widths 1, 2, 4, 8.
func TestFleetElasticShardInvariance(t *testing.T) {
	base, err := Run(elasticConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Joins == 0 || base.Preempts == 0 {
		t.Fatalf("churn config produced no churn: %+v", base)
	}
	for _, k := range []int{2, 4, 8} {
		r, err := Run(elasticConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != base.String() {
			t.Fatalf("elastic shards=%d diverged:\n  %s\nvs shards=1:\n  %s", k, r, base)
		}
	}
}

// TestFleetElasticReplayable pins that reruns of the same elastic config
// are byte-identical — seeded churn, not wall-clock churn.
func TestFleetElasticReplayable(t *testing.T) {
	a, err := Run(elasticConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(elasticConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("rerun diverged:\n  %s\nvs\n  %s", a, b)
	}
}

// TestFleetChurnFreeLineUnchanged pins the compatibility guarantee: a run
// without churn renders the exact pre-elasticity summary line (no
// joins/preempts suffix), so all committed goldens stay valid.
func TestFleetChurnFreeLineUnchanged(t *testing.T) {
	r, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(
		"fleet nodes=%d events=%d msgs=%d bytes=%d dropped=%d heartbeats=%d rumors=%d work=%d hash=%016x vt=%v",
		r.Nodes, r.Events, r.Messages, r.BytesSent, r.Dropped,
		r.Heartbeats, r.Rumors, r.WorkDone, r.StateHash, r.VirtualTime)
	if r.String() != want {
		t.Fatalf("churn-free line gained a suffix:\n  %s", r)
	}
}

// TestFleetJoinerPullsWork pins the join semantics: a node arriving with
// an empty queue ends up doing work via the steal path.
func TestFleetJoinerPullsWork(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Faults = new(fault.Schedule).Join(63, sim.Micros(100))
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Joins != 1 {
		t.Fatalf("joins = %d, want 1", r.Joins)
	}
	static, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == static.String() {
		t.Fatal("join had no observable effect on the run")
	}
}

// TestFleetPreemptDrains pins the departure semantics: a preempted node
// hands its queue to the ring successor inside the drain window.
func TestFleetPreemptDrains(t *testing.T) {
	cfg := smallConfig(1)
	cfg.WorkItems = 10000 // deep queues so the victim still holds items
	cfg.Faults = new(fault.Schedule).Preempt(5, sim.Micros(50))
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preempts != 1 {
		t.Fatalf("preempts = %d, want 1", r.Preempts)
	}
	if r.Drained == 0 {
		t.Fatal("preemption drained nothing despite a deep queue")
	}
}

// TestFleetElasticValidation covers the elastic config cross-checks.
func TestFleetElasticValidation(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Elastic = &fault.Elasticity{Nodes: 32, InitialNodes: 4}
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched elastic node count accepted")
	}
	cfg = smallConfig(1)
	cfg.Elastic = &fault.Elasticity{InitialNodes: 4, Duration: sim.Millis(99)}
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched elastic horizon accepted")
	}
	cfg = smallConfig(1)
	cfg.Elastic = &fault.Elasticity{InitialNodes: 0}
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero initial nodes accepted")
	}
}
