package fleet

import (
	"strings"
	"testing"

	"rocket/internal/fault"
	"rocket/internal/obs"
)

// traceOf runs cfg with a fresh flight recorder and returns the default
// (engine-excluded) Perfetto export.
func traceOf(t *testing.T, cfg Config) string {
	t.Helper()
	rec := obs.New(cfg.Shards, 0)
	cfg.Spans = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("flight recorder wrapped (%d dropped): width invariance not comparable", snap.Dropped)
	}
	var b strings.Builder
	if err := obs.WriteTrace(&b, snap, obs.ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestFleetTraceWidthInvariance is the observability determinism
// property: the exported span timeline is byte-identical across engine
// widths 1, 2, 4, 8 and across reruns, with churn exercising the join
// and preemption recording sites.
func TestFleetTraceWidthInvariance(t *testing.T) {
	mk := func(shards int) Config {
		cfg := smallConfig(shards)
		cfg.Elastic = &fault.Elasticity{
			InitialNodes:    48,
			Arrival:         fault.ArrivalLinear,
			PreemptFraction: 0.1,
		}
		return cfg
	}
	base := traceOf(t, mk(1))
	if !strings.Contains(base, `"cat":"steal"`) {
		t.Fatal("trace records no steal spans")
	}
	if strings.Contains(base, `"cat":"window"`) {
		t.Fatal("default export leaks engine spans")
	}
	for _, k := range []int{2, 4, 8} {
		if got := traceOf(t, mk(k)); got != base {
			t.Fatalf("shards=%d trace diverged from shards=1 (lengths %d vs %d)", k, len(got), len(base))
		}
	}
	if rerun := traceOf(t, mk(1)); rerun != base {
		t.Fatal("rerun at the same width diverged")
	}
}

// TestFleetWindowSpansRecorded checks the engine feed: window spans are
// present under IncludeEngine, one lane per shard, and their event
// counts sum to the run's event total.
func TestFleetWindowSpansRecorded(t *testing.T) {
	cfg := smallConfig(4)
	rec := obs.New(cfg.Shards, 0)
	cfg.Spans = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	var windowEvents uint64
	tracks := map[string]bool{}
	for _, s := range snap.Spans {
		if s.Kind == obs.KindWindow {
			windowEvents += uint64(s.Arg)
			tracks[s.Track] = true
		}
	}
	if len(tracks) != 4 {
		t.Fatalf("window spans on %d shard tracks, want 4", len(tracks))
	}
	if windowEvents != res.Events {
		// Width>1 runs count a few extra cross-shard link-fault copies in
		// raw engine events (see Run); this config has no link faults, so
		// the sums must match exactly.
		t.Fatalf("window spans account for %d events, run reports %d", windowEvents, res.Events)
	}
}
