// Package fleet is a message-driven fleet workload for the sharded event
// engine: N nodes exchanging heartbeats, gossip rumors, and work items
// over the cluster fabric, partitioned across shards by a contiguous
// cluster.ShardMap. It exists to exercise event-level parallelism — the
// all-pairs runtime in internal/core is dominated by globally coupled
// state (shared storage, run-wide counters) and stays on the sequential
// loop, whereas fleet protocols are node-local by construction, which is
// exactly the shape conservative PDES parallelizes.
//
// Every quantity a run reports is a pure function of (Config, Seed): node
// behavior draws from per-node generators forked from (Seed, nodeID), all
// cross-node interaction goes through the deterministic merge path, and
// the result digest folds per-node state in node order. Consequently the
// Result — including its StateHash — is bit-identical at every shard
// count, which the shardscale experiment and the engine property tests
// assert.
package fleet

import (
	"fmt"
	"strconv"

	"rocket/internal/cluster"
	"rocket/internal/fault"
	"rocket/internal/obs"
	"rocket/internal/sim"
)

// Config parameterizes a fleet run.
type Config struct {
	// Nodes is the fleet size.
	Nodes int
	// Shards is the engine width; 1 runs the identical protocol on a
	// degenerate shard set.
	Shards int
	// Seed forks every node's generator.
	Seed uint64
	// Duration is the virtual time simulated.
	Duration sim.Time
	// HeartbeatPeriod is the mean heartbeat interval; each node jitters
	// every interval by ±50% from its own generator.
	HeartbeatPeriod sim.Time
	// GossipTTL is how many hops a rumor spawned by a heartbeat travels
	// (0 disables gossip).
	GossipTTL int
	// WorkItems is the initial work queue length per node; nodes that run
	// dry steal half a random peer's queue.
	WorkItems int
	// NetLatency is the fabric's one-way propagation latency — also the
	// engine's conservative lookahead, so it must be positive.
	NetLatency sim.Time
	// NetBandwidth is per-NIC bandwidth in bytes/second.
	NetBandwidth float64
	// Faults is an optional fault schedule (node crashes/restarts, joins,
	// preemptions), routed to owning shards via fault.Split.
	Faults *fault.Schedule
	// Elastic optionally generates seeded churn (arrival patterns plus
	// spot preemption) and appends it to Faults. Its Nodes/Duration must
	// be zero (filled from the fleet config) or match it exactly; a zero
	// Seed inherits the fleet Seed. Nodes whose first membership event is
	// a join start absent: they boot with an empty queue at join time and
	// pull work through the steal path. A preempted node drains its whole
	// queue to its ring successor inside the pre-flip drain window.
	Elastic *fault.Elasticity
	// GPUs is the per-node device shape used to validate the schedule and
	// as straggler targets (a gpu-slow on device 0 stretches the node's
	// work-pump service times). Nil means one device per node.
	GPUs []int
	// StartAt staggers node boot: node i arms its protocol loops at
	// StartAt[i] instead of t=0 (scenario startup patterns). Nil or an
	// all-zero slice is the instant boot and is bit-identical to it.
	StartAt []sim.Time
	// Probes are timed health observations, each armed on its node's
	// owning shard after the fault events of the same timestamp (scenario
	// assertions). Nil leaves the event stream untouched.
	Probes []fault.Probe
	// Spans, when non-nil, records protocol activity (steal round trips,
	// joins, preemption drains) and engine shard windows into the flight
	// recorder. Every protocol span is a pure function of (Config, Seed)
	// — virtual timestamps and payload counts only — so exported traces
	// are width-invariant like the Result; window spans are the
	// deliberate exception (the "engine" category) and exporters exclude
	// them by default. Each shard writes only its own lane, so recording
	// is race-free under parallel window execution.
	Spans *obs.Recorder
}

// DefaultConfig returns a chatty fleet over the default DAS-5-style
// fabric: the heartbeat period is deliberately aggressive so windows stay
// dense and the workload stresses the engine rather than idling.
func DefaultConfig(nodes int) Config {
	fabric := cluster.DefaultConfig()
	return Config{
		Nodes:           nodes,
		Shards:          1,
		Seed:            1,
		Duration:        sim.Millis(50),
		HeartbeatPeriod: sim.Micros(100),
		GossipTTL:       3,
		WorkItems:       32,
		NetLatency:      fabric.NetLatency,
		NetBandwidth:    fabric.NetBandwidth,
	}
}

// ScalingConfig is the fixed 1024-node fleet that BenchmarkShardScaling
// and rocketbench's shard-trajectory measurement both run: sharing the
// definition keeps the committed BENCH trajectory comparable with ad-hoc
// `go test -bench` runs.
func ScalingConfig(shards int) Config {
	cfg := DefaultConfig(1024)
	cfg.Shards = shards
	cfg.Duration = sim.Millis(10)
	return cfg
}

// Result is a fleet run's deterministic summary. It contains no wall-clock
// quantity: hashing or printing a Result is safe inside experiment goldens.
type Result struct {
	Nodes       int
	Shards      int
	Events      uint64
	Windows     uint64
	Messages    uint64
	BytesSent   int64
	Dropped     uint64
	Heartbeats  uint64
	Rumors      uint64
	WorkDone    uint64
	Joins       uint64
	Preempts    uint64
	Drained     uint64
	StateHash   uint64
	VirtualTime sim.Time
}

// String renders the canonical one-line summary used by experiments. The
// shard count is deliberately excluded: the line is identical at every
// width, so goldens double as shard-invariance witnesses. The membership
// suffix appears only when churn actually happened, so churn-free runs
// keep the exact pre-elasticity line (and its golden hashes).
func (r Result) String() string {
	s := fmt.Sprintf(
		"fleet nodes=%d events=%d msgs=%d bytes=%d dropped=%d heartbeats=%d rumors=%d work=%d hash=%016x vt=%v",
		r.Nodes, r.Events, r.Messages, r.BytesSent, r.Dropped,
		r.Heartbeats, r.Rumors, r.WorkDone, r.StateHash, r.VirtualTime)
	if r.Joins+r.Preempts > 0 {
		s += fmt.Sprintf(" joins=%d preempts=%d drained=%d", r.Joins, r.Preempts, r.Drained)
	}
	return s
}

// rng is a splitmix64 stream; one per node, forked from (Seed, nodeID).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// jitter returns a duration in [d/2, 3d/2).
func (r *rng) jitter(d sim.Time) sim.Time {
	return d/2 + sim.Time(r.next()%uint64(d))
}

const fnvPrime = 1099511628211

// node is one fleet member. All fields are owned by the node's shard and
// only ever touched from it.
type node struct {
	id     int
	rng    rng
	hash   uint64
	queue  int // outstanding work items (fungible, so a count suffices)
	busy   bool
	booted bool // heartbeat loop armed (at boot or first join)

	heartbeats uint64
	rumors     uint64
	workDone   uint64
	joins      uint64
	preempts   uint64
	drained    uint64
}

func (n *node) fold(tag uint64, t sim.Time, v uint64) {
	n.hash = (n.hash*fnvPrime ^ tag ^ uint64(t)) + v
}

// msg payload sizes, modeled on small control-plane datagrams.
const (
	heartbeatBytes   = 128
	rumorBytes       = 256
	workRequestBytes = 64
	workGrantBytes   = 1024
	drainBytes       = 1024 // preemption drain header; +64 per item, like grants
)

type fleetSim struct {
	cfg   Config
	env   *sim.Env
	ss    *sim.ShardSet
	net   *cluster.ShardedNet
	inj   *fault.ShardedInjector
	nodes []*node
	// spans is the flight recorder (nil = off); shardOf maps a node to
	// its owning shard, which is the lane its spans are recorded on (one
	// writer per lane under parallel window execution).
	spans   *obs.Recorder
	shardOf func(int) int
}

// nodeSpan records a protocol span on n's owning shard's lane. All call
// sites run on that shard's goroutine, inside virtual events whose times
// are width-invariant.
func (fs *fleetSim) nodeSpan(n *node, s obs.Span) {
	if fs.spans == nil {
		return
	}
	s.Track = "node" + strconv.Itoa(n.id)
	fs.spans.Record(fs.shardOf(n.id), s)
}

// Run executes the workload and returns its deterministic summary.
func Run(cfg Config) (Result, error) {
	if cfg.Nodes < 2 {
		return Result{}, fmt.Errorf("fleet: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NetLatency <= 0 {
		return Result{}, fmt.Errorf("fleet: NetLatency must be positive (it is the lookahead)")
	}
	if cfg.HeartbeatPeriod <= 0 {
		return Result{}, fmt.Errorf("fleet: HeartbeatPeriod must be positive")
	}
	if cfg.GPUs != nil && len(cfg.GPUs) != cfg.Nodes {
		return Result{}, fmt.Errorf("fleet: GPUs shape has %d entries for %d nodes", len(cfg.GPUs), cfg.Nodes)
	}
	if cfg.StartAt != nil && len(cfg.StartAt) != cfg.Nodes {
		return Result{}, fmt.Errorf("fleet: StartAt has %d entries for %d nodes", len(cfg.StartAt), cfg.Nodes)
	}
	for i, at := range cfg.StartAt {
		if at < 0 {
			return Result{}, fmt.Errorf("fleet: StartAt[%d] = %v is negative", i, at)
		}
	}
	for _, p := range cfg.Probes {
		if p.Node < 0 || p.Node >= cfg.Nodes {
			return Result{}, fmt.Errorf("fleet: probe targets node %d of %d", p.Node, cfg.Nodes)
		}
	}

	// Elastic churn compiles to ordinary membership events appended after
	// any scripted schedule; from here down the run only ever sees one
	// fault schedule, so scripted and generated churn share every code
	// path (validation, splitting, hooks, width-invariance).
	faults := cfg.Faults
	if cfg.Elastic != nil {
		e := *cfg.Elastic
		if e.Nodes != 0 && e.Nodes != cfg.Nodes {
			return Result{}, fmt.Errorf("fleet: elasticity over %d nodes in a %d-node fleet", e.Nodes, cfg.Nodes)
		}
		e.Nodes = cfg.Nodes
		if e.Duration != 0 && e.Duration != cfg.Duration {
			return Result{}, fmt.Errorf("fleet: elasticity horizon %v differs from run duration %v", e.Duration, cfg.Duration)
		}
		e.Duration = cfg.Duration
		if e.Seed == 0 {
			e.Seed = cfg.Seed
		}
		churn, err := e.Generate()
		if err != nil {
			return Result{}, err
		}
		merged := &fault.Schedule{}
		if !faults.Empty() {
			merged.Events = append(merged.Events, faults.Events...)
		}
		merged.Events = append(merged.Events, churn.Events...)
		faults = merged
	}

	opts := []sim.EnvOption{sim.WithShards(cfg.Shards), sim.WithSeed(cfg.Seed), sim.WithLookahead(cfg.NetLatency)}
	if cfg.Spans != nil {
		rec := cfg.Spans
		opts = append(opts, sim.WithWindowHook(func(shard int, start, end sim.Time, events uint64) {
			rec.Record(shard, obs.Span{Start: start, End: end, Kind: obs.KindWindow,
				Track: "shard" + strconv.Itoa(shard), Name: "window", Arg: int64(events)})
		}))
	}
	env := sim.NewEnv(opts...)
	ss := env.Sharded()
	m := cluster.NewShardMap(cfg.Nodes, ss.NumShards())
	fs := &fleetSim{
		cfg:     cfg,
		env:     env,
		ss:      ss,
		net:     cluster.NewShardedNet(ss, m, cfg.NetLatency, cfg.NetBandwidth),
		nodes:   make([]*node, cfg.Nodes),
		spans:   cfg.Spans,
		shardOf: m.ShardOf,
	}
	for i := range fs.nodes {
		fs.nodes[i] = &node{
			id:    i,
			rng:   rng{s: cfg.Seed*fnvPrime + uint64(i)},
			queue: cfg.WorkItems,
		}
	}
	members := fault.InitialMembers(faults, cfg.Nodes)
	if !faults.Empty() {
		gpus := cfg.GPUs
		if gpus == nil {
			gpus = make([]int, cfg.Nodes)
			for i := range gpus {
				gpus[i] = 1 // fleet nodes model one device; shape for validation
			}
		}
		inj, err := fault.NewShardedInjector(ss, gpus, faults, m.ShardOf, fault.Hooks{
			OnCrash: func(id int) { fs.nodes[id].queue = 0 }, // volatile queue lost
			OnJoin: func(id int) {
				// Runs on id's owning shard, after the liveness flip: the
				// joiner is live capacity from this instant.
				fs.join(ss.Shard(m.ShardOf(id)).Env(), fs.nodes[id])
			},
			OnPreempt: func(id int) {
				// Runs on id's owning shard, BEFORE the liveness flip (the
				// drain window): the departing node's sends still go out.
				fs.drain(ss.Shard(m.ShardOf(id)).Env(), fs.nodes[id])
			},
		})
		if err != nil {
			return Result{}, err
		}
		fs.inj = inj
		fs.net.SetAliveFunc(inj.Alive)
	}
	// Probes arm after the injector so same-timestamp fault events fire
	// first; with no schedule fs.inj is nil and every probe reads alive.
	if len(cfg.Probes) > 0 {
		fault.ArmShardedProbes(ss, fs.inj, m.ShardOf, cfg.Probes)
	}

	// Boot: every initial member arms its heartbeat loop and work pump on
	// its own shard's Env, offset by its StartAt slot when staggered
	// startup is configured (a zero offset takes the t=0 path and stays
	// bit-identical to the nil-StartAt boot). Initially-absent slots —
	// nodes whose first membership event is a join — hold no work and do
	// not boot here; their OnJoin hook boots them at join time.
	for i, n := range fs.nodes {
		n := n
		if !members[i] {
			n.queue = 0
			continue
		}
		n.booted = true
		e := ss.Shard(m.ShardOf(i)).Env()
		var start sim.Time
		if cfg.StartAt != nil {
			start = cfg.StartAt[i]
		}
		if start == 0 {
			e.At(n.rng.jitter(cfg.HeartbeatPeriod), func() { fs.heartbeat(e, n) })
			e.Defer(func() { fs.pump(e, n) })
		} else {
			e.At(start+n.rng.jitter(cfg.HeartbeatPeriod), func() { fs.heartbeat(e, n) })
			e.At(start, func() { fs.pump(e, n) })
		}
	}

	env.RunUntil(cfg.Duration)

	res := Result{
		Nodes:       cfg.Nodes,
		Shards:      ss.NumShards(),
		Windows:     ss.Windows(),
		Messages:    fs.net.Messages(),
		BytesSent:   fs.net.BytesSent(),
		Dropped:     fs.net.Dropped(),
		VirtualTime: env.Now(),
	}
	for i := 0; i < ss.NumShards(); i++ {
		res.Events += ss.Shard(i).Env().EventsProcessed()
	}
	// fault.Split duplicates a link event to both endpoint shards when the
	// endpoints are owned by different shards, so the raw engine count
	// varies with the width. Subtract the extra copies: Events then counts
	// each scheduled fault exactly once and stays width-invariant.
	if !cfg.Faults.Empty() {
		for _, ev := range cfg.Faults.Events {
			switch ev.Kind {
			case fault.LinkDown, fault.LinkUp, fault.LinkDegrade:
				if m.ShardOf(ev.A) != m.ShardOf(ev.B) {
					res.Events--
				}
			}
		}
	}
	for _, n := range fs.nodes {
		res.Heartbeats += n.heartbeats
		res.Rumors += n.rumors
		res.WorkDone += n.workDone
		res.Joins += n.joins
		res.Preempts += n.preempts
		res.Drained += n.drained
		res.StateHash = res.StateHash*fnvPrime + n.hash + uint64(n.id)
	}
	env.Close()
	return res, nil
}

// join boots node n at join time on its own shard: it arrives with an
// empty queue and immediately pulls work through the steal path, and its
// heartbeat loop is armed with the usual jitter. A rejoin after an earlier
// membership (crashed slots are restarted via Restart, but a scripted
// preempt→join cycle lands here too) only re-enters the pump — the
// heartbeat loop from the first boot is still ticking, it must not be
// doubled.
func (fs *fleetSim) join(e *sim.Env, n *node) {
	n.joins++
	n.fold(0x4a, e.Now(), n.joins)
	fs.nodeSpan(n, obs.Span{Start: e.Now(), End: e.Now(), Kind: obs.KindMark,
		Name: "join", Arg: int64(n.joins)})
	if !n.booted {
		n.booted = true
		e.After(n.rng.jitter(fs.cfg.HeartbeatPeriod), func() { fs.heartbeat(e, n) })
	}
	if !n.busy {
		fs.pump(e, n)
	}
}

// drain is the pre-flip half of a preemption: the departing node pushes
// its whole queue to its ring successor while its sends are still
// admitted, then departs. Liveness is checked receiver-side at delivery —
// if the successor is itself dead or departed by then the batch is
// dropped, the same volatile-loss semantics as a crash.
func (fs *fleetSim) drain(e *sim.Env, n *node) {
	n.preempts++
	n.fold(0x50, e.Now(), n.preempts)
	batch := n.queue
	n.queue = 0
	fs.nodeSpan(n, obs.Span{Start: e.Now(), End: e.Now(), Kind: obs.KindMark,
		Name: "preempt", Arg: int64(batch)})
	if batch == 0 {
		return
	}
	n.drained += uint64(batch)
	succ := (n.id + 1) % fs.cfg.Nodes
	fs.net.Send(e, n.id, succ, int64(drainBytes+batch*64), func(de *sim.Env) {
		sn := fs.nodes[succ]
		sn.queue += batch
		sn.fold(0x44, de.Now(), uint64(batch))
		if !sn.busy {
			fs.pump(de, sn)
		}
	})
}

// alive reports n's liveness from its own shard's injector (always true
// without faults).
func (fs *fleetSim) alive(n *node) bool {
	return fs.inj == nil || fs.inj.For(n.id).Alive(n.id)
}

// heartbeat fires on n's shard: send a heartbeat to the ring successor,
// then rearm with jitter. Dead nodes keep the timer running (a crash does
// not stop virtual time) but the fabric refuses their sends.
func (fs *fleetSim) heartbeat(e *sim.Env, n *node) {
	succ := (n.id + 1) % fs.cfg.Nodes
	fs.net.Send(e, n.id, succ, heartbeatBytes, func(de *sim.Env) {
		fs.onHeartbeat(de, fs.nodes[succ], n.id)
	})
	e.After(n.rng.jitter(fs.cfg.HeartbeatPeriod), func() { fs.heartbeat(e, n) })
}

// onHeartbeat runs on the receiver's shard: record the observation and
// spawn a rumor walk.
func (fs *fleetSim) onHeartbeat(e *sim.Env, n *node, from int) {
	n.heartbeats++
	n.fold(0x48, e.Now(), uint64(from))
	if fs.cfg.GossipTTL > 0 {
		fs.gossip(e, n, uint64(from)<<8^uint64(n.id), fs.cfg.GossipTTL)
	}
}

// gossip forwards a rumor to a random peer chosen by the forwarding node's
// own generator; each hop decrements ttl.
func (fs *fleetSim) gossip(e *sim.Env, n *node, rumor uint64, ttl int) {
	peer := n.rng.intn(fs.cfg.Nodes - 1)
	if peer >= n.id {
		peer++
	}
	fs.net.Send(e, n.id, peer, rumorBytes, func(de *sim.Env) {
		pn := fs.nodes[peer]
		pn.rumors++
		pn.fold(0x52, de.Now(), rumor)
		if ttl > 1 {
			fs.gossip(de, pn, rumor*fnvPrime, ttl-1)
		}
	})
}

// pump is n's work loop: process queued items one at a time with a
// generator-drawn service time; when the queue runs dry, steal half a
// random peer's queue.
func (fs *fleetSim) pump(e *sim.Env, n *node) {
	if n.queue == 0 {
		n.busy = false
		fs.steal(e, n)
		return
	}
	n.busy = true
	service := sim.Micros(20) + sim.Time(n.rng.next()%uint64(sim.Micros(80)))
	// A straggler window (gpu-slow on the node's device 0) stretches
	// service times while it lasts; factor 1 leaves the draw untouched.
	if fs.inj != nil {
		if f := fs.inj.For(n.id).GPUFactor(n.id, 0); f > 1 {
			service = sim.Time(float64(service) * f)
		}
	}
	e.After(service, func() {
		if fs.alive(n) {
			n.queue--
			n.workDone++
			n.fold(0x57, e.Now(), n.workDone)
		}
		fs.pump(e, n)
	})
}

// steal asks a random peer for half its queue; an empty grant backs off
// and retries.
func (fs *fleetSim) steal(e *sim.Env, n *node) {
	victim := n.rng.intn(fs.cfg.Nodes - 1)
	if victim >= n.id {
		victim++
	}
	reqAt := e.Now()
	fs.net.Send(e, n.id, victim, workRequestBytes, func(de *sim.Env) {
		v := fs.nodes[victim]
		grant := v.queue / 2
		v.queue -= grant
		size := int64(workGrantBytes + grant*64)
		fs.net.Send(de, victim, n.id, size, func(ge *sim.Env) {
			n.queue += grant
			// The full request→grant round trip, recorded at grant
			// delivery on the thief's own shard; Arg 0 marks a failed
			// attempt (empty victim).
			fs.nodeSpan(n, obs.Span{Start: reqAt, End: ge.Now(), Kind: obs.KindSteal,
				Name: "steal", Arg: int64(grant), Arg2: int64(victim)})
			if grant > 0 {
				n.fold(0x53, ge.Now(), uint64(grant))
				if !n.busy {
					fs.pump(ge, n)
				}
				return
			}
			ge.After(sim.Millis(1)+n.rng.jitter(sim.Micros(500)), func() { fs.steal(ge, n) })
		})
	})
}
