package pairstore

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzSegmentRoundTrip asserts the columnar segment codec's two-sided
// contract. Forward: any batch of digest pairs builds a segment whose
// encode→compress→decode round trip reproduces every row exactly.
// Backward: any truncation or bit flip of the encoded file must fail
// with a structured *CorruptError — never a panic, never a silently
// wrong segment. Segment files survive process restarts and (in the
// replication design) network transfer, so the decoder is a trust
// boundary.
func FuzzSegmentRoundTrip(f *testing.F) {
	seed := func(pairs ...uint64) []byte {
		var b []byte
		for _, v := range pairs {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	f.Add(seed(1, 2, 3, 4, 5, 6))
	f.Add(seed(0, 0))                            // one self-pair at digest zero
	f.Add(seed(1<<63, 1, 1, 1<<63))              // extreme digests both orders
	f.Add(append(seed(7, 8, 9, 10), 0xff, 0x03)) // trailing mutation directive
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret the input as little-endian digest pairs; leftover
		// bytes steer the mutation below. Every third row is a
		// tombstone, every fifth carries a value, so all columns are
		// exercised.
		var rows []row
		seen := make(map[Key]bool)
		i := 0
		for ; i+16 <= len(raw) && len(rows) < 4*blockRows; i += 16 {
			k := Key{
				A: Digest(binary.LittleEndian.Uint64(raw[i:])),
				B: Digest(binary.LittleEndian.Uint64(raw[i+8:])),
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			r := row{key: k, ver: len(rows) % 7}
			if len(rows)%3 == 0 {
				r.tomb = true
			} else if len(rows)%5 == 0 {
				r.val = raw[i : i+10]
			}
			rows = append(rows, r)
		}
		if len(rows) == 0 {
			return
		}
		seg := buildSegment(3, rows)
		enc := seg.encodeFile()
		dec, err := decodeSegmentFile(enc)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if dec.rows != len(rows) || dec.minKey != seg.minKey || dec.maxKey != seg.maxKey {
			t.Fatalf("decoded header %d/%v/%v, want %d/%v/%v",
				dec.rows, dec.minKey, dec.maxKey, len(rows), seg.minKey, seg.maxKey)
		}
		it := newSegIter(dec)
		want := newSegIter(seg)
		for {
			got, ok1 := it.next()
			exp, ok2 := want.next()
			if ok1 != ok2 {
				t.Fatalf("iterator length mismatch")
			}
			if !ok1 {
				break
			}
			if !sameRow(got, exp) {
				t.Fatalf("row mismatch: %+v vs %+v", got, exp)
			}
		}

		// Mutation directive from the leftover bytes: position and mask.
		rest := raw[i:]
		if len(rest) >= 2 && len(enc) > 0 {
			pos := int(rest[0]) * len(enc) / 256
			mask := rest[1]
			if mask != 0 {
				mut := append([]byte(nil), enc...)
				mut[pos] ^= mask
				if _, err := decodeSegmentFile(mut); err == nil {
					t.Fatalf("bit flip at %d (mask %02x) decoded successfully", pos, mask)
				} else {
					var ce *CorruptError
					if !errors.As(err, &ce) {
						t.Fatalf("bit flip error %T is not *CorruptError: %v", err, err)
					}
				}
			}
			cut := int(rest[0]) * len(enc) / 256
			if _, err := decodeSegmentFile(enc[:cut]); err == nil {
				t.Fatalf("truncation at %d decoded successfully", cut)
			} else {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("truncation error %T is not *CorruptError: %v", err, err)
				}
			}
		}
	})
}
