package pairstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// randRows builds n distinct-key rows over a digest universe of width
// universe, deterministically from seed.
func randRows(seed int64, n, universe int) []row {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[Key]bool, n)
	rows := make([]row, 0, n)
	for len(rows) < n {
		k := Key{
			A: Digest(rng.Intn(universe)*7919 + 13),
			B: Digest(rng.Intn(universe)*104729 + 17),
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		r := row{key: k, ver: rng.Intn(50)}
		switch rng.Intn(3) {
		case 0:
			r.val = []byte(fmt.Sprintf(`{"d":%d}`, rng.Intn(1000)))
		case 1:
			r.tomb = true
		}
		rows = append(rows, r)
	}
	return rows
}

func sameRow(a, b row) bool {
	return a.key == b.key && a.ver == b.ver && a.tomb == b.tomb && string(a.val) == string(b.val)
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, blockRows, blockRows + 1, 3*blockRows + 17} {
		rows := randRows(int64(n), n, 4*n+10)
		seg := buildSegment(7, rows)
		raw := seg.encodeFile()
		dec, err := decodeSegmentFile(raw)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if dec.rows != n || dec.id != 7 || dec.minKey != seg.minKey || dec.maxKey != seg.maxKey {
			t.Fatalf("n=%d: header mismatch: %+v", n, dec)
		}
		it, want := newSegIter(dec), newSegIter(seg)
		for i := 0; i < n; i++ {
			got, ok1 := it.next()
			exp, ok2 := want.next()
			if !ok1 || !ok2 || !sameRow(got, exp) {
				t.Fatalf("n=%d row %d: got %+v ok=%v want %+v ok=%v", n, i, got, ok1, exp, ok2)
			}
		}
		if _, ok := it.next(); ok {
			t.Fatalf("n=%d: iterator overruns", n)
		}
		// Point probes agree with the iterator.
		var st Stats
		for _, r := range rows[:min(64, n)] {
			got, ok := dec.get(r.key, &st)
			if !ok || !sameRow(got, r) {
				t.Fatalf("n=%d: get(%v) = %+v ok=%v, want %+v", n, r.key, got, ok, r)
			}
		}
		if _, ok := dec.get(Key{A: 1<<63 + 11, B: 3}, &st); ok {
			t.Fatalf("n=%d: get of absent key succeeded", n)
		}
	}
}

// TestSegmentCorruption checks the decoder's contract: any truncation
// or bit flip must surface as a *CorruptError, never a panic or a
// silently wrong segment.
func TestSegmentCorruption(t *testing.T) {
	rows := randRows(99, 2*blockRows+100, 5000)
	raw := buildSegment(1, rows).encodeFile()

	for _, cut := range []int{0, 4, len(segMagic), len(segMagic) + 7, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		if _, err := decodeSegmentFile(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("truncation at %d: error %T is not *CorruptError: %v", cut, err, err)
			}
		}
	}
	step := len(raw)/97 + 1
	for pos := 0; pos < len(raw); pos += step {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		if _, err := decodeSegmentFile(mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", pos)
		} else {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("bit flip at %d: error %T is not *CorruptError: %v", pos, err, err)
			}
		}
	}
}

// TestSegmentCompression checks the columnar layout actually earns its
// keep: far below the 16 raw key bytes per pair.
func TestSegmentCompression(t *testing.T) {
	const items = 500 // all-pairs over 500 items = 124750 pairs
	digest := DigestFunc("corpus", "forensics", 1)
	rows := make([]row, 0, items*(items-1)/2)
	for i := 0; i < items; i++ {
		for j := i + 1; j < items; j++ {
			rows = append(rows, row{key: PairKey(digest, i, j), ver: items})
		}
	}
	seg := buildSegment(0, rows)
	raw := seg.encodeFile()
	bpp := float64(len(raw)) / float64(len(rows))
	if bpp > 8 {
		t.Fatalf("all-pairs segment costs %.2f bytes/pair, want <= 8", bpp)
	}
	// The resident index (fences + dictionary + bloom) must stay around
	// the bloom's ~1.25 bytes/pair — an order of magnitude under raw
	// 16-byte keys and ~40x under a resident per-pair map.
	if idx := seg.indexBytes(); idx > 2*int64(len(rows)) {
		t.Fatalf("resident index %d bytes for %d rows — not bounded", idx, len(rows))
	}
}

func TestStoreDeleteAndRevive(t *testing.T) {
	s := New()
	k := Key{A: 1, B: 2}
	if !s.Put(Entry{Key: k, Value: json.RawMessage(`1`)}) {
		t.Fatal("put rejected")
	}
	if !s.Delete(k) {
		t.Fatal("delete of live key rejected")
	}
	if s.Delete(k) {
		t.Fatal("double delete accepted")
	}
	if s.Has(k) || s.Len() != 0 {
		t.Fatal("deleted key still visible")
	}
	if !s.Put(Entry{Key: k, Value: json.RawMessage(`2`)}) {
		t.Fatal("revive put rejected")
	}
	if e, ok := s.Get(k); !ok || string(e.Value) != `2` {
		t.Fatalf("revived value = %+v ok=%v", e, ok)
	}
	// The sequence survives seals between each step.
	s2 := New()
	s2.Put(Entry{Key: k})
	s2.Seal()
	s2.Delete(k)
	s2.Seal()
	if s2.Has(k) || s2.Len() != 0 {
		t.Fatal("sealed tombstone does not shadow sealed entry")
	}
	s2.Put(Entry{Key: k, Version: 9})
	s2.Seal()
	if e, ok := s2.Get(k); !ok || e.Version != 9 {
		t.Fatalf("revive across seals = %+v ok=%v", e, ok)
	}
}

func TestCompactEdgeCases(t *testing.T) {
	t.Run("empty store", func(t *testing.T) {
		s := New()
		if dropped := s.Compact(); dropped != 0 {
			t.Fatalf("empty compact dropped %d", dropped)
		}
		st := s.Stats()
		if st.Segments != 1 || st.Compactions != 1 {
			t.Fatalf("stats after empty compact: %+v", st)
		}
	})
	t.Run("single segment no-op", func(t *testing.T) {
		s := New()
		for i := 0; i < 10; i++ {
			s.Put(Entry{Key: Key{A: Digest(i), B: Digest(i + 1)}})
		}
		s.Seal()
		before := s.segmentsNewestFirst()
		if len(before) != 1 {
			t.Fatalf("expected 1 segment, have %d", len(before))
		}
		s.Compact()
		after := s.segmentsNewestFirst()
		if len(after) != 1 || after[0] != before[0] {
			t.Fatal("tombstone-free single-segment compaction rewrote the segment")
		}
	})
	t.Run("tombstone-only segment eliminated", func(t *testing.T) {
		s := New()
		for i := 0; i < 8; i++ {
			s.Put(Entry{Key: Key{A: Digest(i), B: 1}})
		}
		s.Seal()
		for i := 0; i < 8; i++ {
			s.Delete(Key{A: Digest(i), B: 1})
		}
		s.Seal() // a segment of pure tombstones
		if got := len(s.segmentsNewestFirst()); got != 2 {
			t.Fatalf("expected 2 segments before compact, have %d", got)
		}
		s.Compact()
		if got := len(s.segmentsNewestFirst()); got != 0 {
			t.Fatalf("tombstone-only store left %d segments after compact", got)
		}
		st := s.Stats()
		if st.Entries != 0 || st.LogEntries != 0 || st.Tombstones != 0 {
			t.Fatalf("stats after full elimination: %+v", st)
		}
	})
	t.Run("tiered merge preserves newest", func(t *testing.T) {
		s := New()
		k := Key{A: 42, B: 43}
		s.Put(Entry{Key: k, Version: 1})
		s.Seal()
		s.Delete(k)
		s.Seal()
		s.Put(Entry{Key: k, Version: 3})
		s.Seal()
		s.Put(Entry{Key: Key{A: 9, B: 9}})
		s.Seal() // 4th seal triggers the fanout-4 tier merge
		st := s.Stats()
		if st.Levels != 1 || len(s.levels[0]) != 0 || len(s.levels[1]) != 1 {
			t.Fatalf("expected a single L1 segment, levels=%v", st.Levels)
		}
		if e, ok := s.Get(k); !ok || e.Version != 3 {
			t.Fatalf("after tier merge Get = %+v ok=%v, want version 3", e, ok)
		}
		if s.levels[1][0].tombs != 0 {
			t.Fatal("bottom-level merge kept a tombstone")
		}
	})
}

func TestAutoSealBoundsMemtable(t *testing.T) {
	s := New()
	s.SetAutoSealThreshold(64)
	digest := DigestFunc("corpus", "app", 3)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Put(Entry{Key: PairKey(digest, i, i+1), Version: i})
	}
	st := s.Stats()
	if st.Seals == 0 {
		t.Fatal("auto-seal never fired")
	}
	if len(s.mem.entries) >= 64 {
		t.Fatalf("memtable holds %d entries, threshold 64", len(s.mem.entries))
	}
	if st.Entries != n {
		t.Fatalf("entries = %d, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		if !s.Has(PairKey(digest, i, i+1)) {
			t.Fatalf("key %d lost across auto-seals", i)
		}
	}
	if st.IndexResidentBytes == 0 || st.Levels == 0 {
		t.Fatalf("sealed store reports no resident index / levels: %+v", st)
	}
}

func TestSnapshotImmuneToSealAndCompact(t *testing.T) {
	s := New()
	digest := DigestFunc("corpus", "app", 5)
	for i := 0; i < 100; i++ {
		s.Put(Entry{Key: PairKey(digest, i, i+1)})
	}
	snap := s.Snapshot()
	s.Seal()
	for i := 100; i < 200; i++ {
		s.Put(Entry{Key: PairKey(digest, i, i+1)})
	}
	s.Compact()
	s.Delete(PairKey(digest, 0, 1))

	if snap.Len() != 100 {
		t.Fatalf("snapshot len = %d, want 100", snap.Len())
	}
	if !snap.Has(PairKey(digest, 0, 1)) {
		t.Fatal("snapshot lost a pre-snapshot key (or saw a later delete)")
	}
	if snap.Has(PairKey(digest, 150, 151)) {
		t.Fatal("snapshot sees a post-snapshot key")
	}
	keys := make([]Key, 200)
	out := make([]bool, 200)
	for i := range keys {
		keys[i] = PairKey(digest, i, i+1)
	}
	snap.HasMany(keys, out)
	for i, got := range out {
		if got != (i < 100) {
			t.Fatalf("HasMany[%d] = %v", i, got)
		}
	}
}

// TestHasManyAgreesWithHas cross-checks the sorted merge-walk against
// per-key probes over a store with several sealed levels.
func TestHasManyAgreesWithHas(t *testing.T) {
	s := New()
	s.SetAutoSealThreshold(128)
	rng := rand.New(rand.NewSource(11))
	present := make([]Key, 0, 1500)
	for i := 0; i < 1500; i++ {
		k := Key{A: Digest(rng.Uint64()), B: Digest(rng.Uint64())}
		s.Put(Entry{Key: k})
		present = append(present, k)
	}
	snap := s.Snapshot()
	keys := make([]Key, 0, 3000)
	want := make([]bool, 0, 3000)
	for i := 0; i < 3000; i++ {
		if i%2 == 0 {
			keys = append(keys, present[rng.Intn(len(present))])
			want = append(want, true)
		} else {
			keys = append(keys, Key{A: Digest(rng.Uint64()), B: Digest(rng.Uint64())})
			want = append(want, false)
		}
	}
	out := make([]bool, len(keys))
	snap.HasMany(keys, out)
	for i := range keys {
		if out[i] != want[i] {
			t.Fatalf("HasMany[%d] = %v, want %v", i, out[i], want[i])
		}
		if snap.Has(keys[i]) != want[i] {
			t.Fatalf("Has(%v) disagrees", keys[i])
		}
	}
	st := s.Stats()
	if st.BloomProbes == 0 || st.BloomNegatives == 0 {
		t.Fatalf("bloom filter never consulted: %+v", st)
	}
}
