package pairstore

// An immutable, digest-sorted, columnar segment: the unit the store's
// sealed levels are made of.
//
// Layout. Entries are sorted by key (A, then B) and split into
// fixed-size blocks. Per block, the key columns are dictionary-encoded
// against the segment's sorted digest dictionary — a pair becomes two
// small indices — then the A column (non-decreasing within a block) is
// delta+varint encoded and the B column bit-packed at the dictionary's
// bit width. Version and value-length columns are varint-encoded;
// values are stored verbatim. Each block is individually compressed
// (flate, kept only when it shrinks) and checksummed.
//
// Why this beats raw 16-byte keys: a segment over d distinct digests
// spends 8·d bytes on the dictionary once, then ~(8 + ⌈log₂ d⌉)/8
// bytes per pair on keys — about 2.5 bytes/pair at a million pairs
// instead of 16, before compression. All-pairs workloads have d ≈
// √(2·pairs), so the dictionary is a vanishing fraction of the file.
//
// Resident footprint. Only the fence index (per-block first/last keys),
// the digest dictionary, and the bloom filter stay decoded in memory;
// the block payloads are opaque bytes decoded on demand (one block
// cached per segment). That bounded index is what lets delta planning
// push predicates down — skip whole segments by fence and bloom, whole
// blocks by fence — instead of holding a per-pair map resident.

import (
	"bytes"
	"encoding/binary"
	"sort"
)

// blockRows is the number of entries per block. 4096 rows keeps a
// decoded block around 100KB and the fence index at ~1/100th of a
// percent of the data.
const blockRows = 4096

// row is one segment entry in decoded form.
type row struct {
	key  Key
	ver  int
	tomb bool
	val  []byte
}

func keyLess(a, b Key) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

type blockMeta struct {
	first, last Key
	rows        int
	off, length int
}

type segment struct {
	id      uint64
	rows    int
	tombs   int
	minKey  Key
	maxKey  Key
	modeled int64 // modeled log bytes (EntryOverheadBytes + value length per row)

	dict   []uint64 // sorted distinct digests referenced by the key columns
	blocks []blockMeta
	data   []byte // concatenated compressed block payloads
	filter bloom

	// file and diskBytes are set once the segment has been persisted:
	// the content-addressed filename and its encoded size.
	file      string
	diskBytes int64

	// One-block decode cache: probes under the store lock are strongly
	// sequential (sorted planner batches), so caching the last decoded
	// block turns a merge-walk into one decode per block.
	cacheBlk int
	cache    *decodedBlock
}

type decodedBlock struct {
	aIdx   []uint64
	bIdx   []uint64
	tomb   []byte // bitmap, (rows+7)/8 bytes
	vers   []int64
	valOff []int // rows+1 prefix offsets into vals
	vals   []byte
}

func (d *decodedBlock) isTomb(i int) bool { return d.tomb[i/8]&(1<<(i%8)) != 0 }

// rowAt materializes row i of the block against the segment dictionary.
func (s *segment) rowAt(d *decodedBlock, i int) row {
	r := row{
		key:  Key{A: Digest(s.dict[d.aIdx[i]]), B: Digest(s.dict[d.bIdx[i]])},
		ver:  int(d.vers[i]),
		tomb: d.isTomb(i),
	}
	if lo, hi := d.valOff[i], d.valOff[i+1]; hi > lo {
		r.val = d.vals[lo:hi]
	}
	return r
}

// indexBytes is the segment's bounded resident footprint: fence index,
// dictionary, and bloom filter. Block payloads are excluded — they are
// the storage medium, decoded on demand.
func (s *segment) indexBytes() int64 {
	const blockMetaBytes = 48 // 2 keys + 3 ints
	return int64(len(s.blocks))*blockMetaBytes + int64(len(s.dict))*8 + s.filter.sizeBytes()
}

// segBuilder assembles a segment from rows arriving in sorted key
// order. The dictionary must be fixed up front (it is the sorted union
// of every digest the rows reference), which is what allows streaming
// block emission during merges.
type segBuilder struct {
	id       uint64
	dict     []uint64
	dictBits uint
	filter   bloom

	blocks  []blockMeta
	data    []byte
	rows    int
	tombs   int
	modeled int64
	minKey  Key
	maxKey  Key

	curA    []uint64
	curB    []uint64
	curTomb []bool
	curVer  []int64
	curVLen []int
	curVals []byte
	scratch []byte
}

func newSegBuilder(id uint64, dict []uint64, estRows int) *segBuilder {
	return &segBuilder{
		id:       id,
		dict:     dict,
		dictBits: bitWidth(uint64(len(dict) - 1)),
		filter:   newBloom(estRows),
	}
}

func dictIndex(dict []uint64, d Digest) uint64 {
	i := sort.Search(len(dict), func(k int) bool { return dict[k] >= uint64(d) })
	return uint64(i)
}

func (b *segBuilder) add(r row) {
	if b.rows == 0 {
		b.minKey = r.key
	}
	b.maxKey = r.key
	b.curA = append(b.curA, dictIndex(b.dict, r.key.A))
	b.curB = append(b.curB, dictIndex(b.dict, r.key.B))
	b.curTomb = append(b.curTomb, r.tomb)
	b.curVer = append(b.curVer, int64(r.ver))
	b.curVLen = append(b.curVLen, len(r.val))
	b.curVals = append(b.curVals, r.val...)
	b.filter.add(r.key)
	b.rows++
	if r.tomb {
		b.tombs++
	}
	b.modeled += EntryOverheadBytes + int64(len(r.val))
	if len(b.curA) == blockRows {
		b.flushBlock()
	}
}

func (b *segBuilder) flushBlock() {
	n := len(b.curA)
	if n == 0 {
		return
	}
	first := Key{A: Digest(b.dict[b.curA[0]]), B: Digest(b.dict[b.curB[0]])}
	last := Key{A: Digest(b.dict[b.curA[n-1]]), B: Digest(b.dict[b.curB[n-1]])}

	p := b.scratch[:0]
	p = putUvarint(p, uint64(n))
	// Column A: absolute first index, then non-negative deltas (rows are
	// key-sorted, so A indices never decrease within a block).
	p = putUvarint(p, b.curA[0])
	for i := 1; i < n; i++ {
		p = putUvarint(p, b.curA[i]-b.curA[i-1])
	}
	// Column B: bit-packed at the dictionary width.
	p = packBits(p, b.curB[:n], b.dictBits)
	// Tombstone bitmap.
	tb := make([]byte, (n+7)/8)
	for i, t := range b.curTomb {
		if t {
			tb[i/8] |= 1 << (i % 8)
		}
	}
	p = append(p, tb...)
	// Versions: zigzag delta varints (runs of one dataset version
	// collapse to zeros, which flate then erases).
	prev := int64(0)
	for i := 0; i < n; i++ {
		p = putVarint(p, b.curVer[i]-prev)
		prev = b.curVer[i]
	}
	// Value lengths, then the concatenated value bytes.
	for i := 0; i < n; i++ {
		p = putUvarint(p, uint64(b.curVLen[i]))
	}
	p = append(p, b.curVals...)
	b.scratch = p

	off := len(b.data)
	b.data = compressBlock(b.data, p)
	b.blocks = append(b.blocks, blockMeta{
		first: first, last: last, rows: n, off: off, length: len(b.data) - off,
	})
	b.curA = b.curA[:0]
	b.curB = b.curB[:0]
	b.curTomb = b.curTomb[:0]
	b.curVer = b.curVer[:0]
	b.curVLen = b.curVLen[:0]
	b.curVals = b.curVals[:0]
}

func (b *segBuilder) finish() *segment {
	b.flushBlock()
	return &segment{
		id:      b.id,
		rows:    b.rows,
		tombs:   b.tombs,
		minKey:  b.minKey,
		maxKey:  b.maxKey,
		modeled: b.modeled,
		dict:    b.dict,
		blocks:  b.blocks,
		data:    b.data,
		filter:  b.filter,

		cacheBlk: -1,
	}
}

// buildSegment sorts rows by key and assembles a segment. Rows must
// reference each key at most once (the memtable collapses chains before
// sealing).
func buildSegment(id uint64, rows []row) *segment {
	sort.Slice(rows, func(i, j int) bool { return keyLess(rows[i].key, rows[j].key) })
	dict := make([]uint64, 0, 2*len(rows))
	for _, r := range rows {
		dict = append(dict, uint64(r.key.A), uint64(r.key.B))
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	dict = dedupU64(dict)
	b := newSegBuilder(id, dict, len(rows))
	for _, r := range rows {
		b.add(r)
	}
	return b.finish()
}

func dedupU64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// decodeBlock decodes block i, going through the one-block cache.
func (s *segment) decodeBlock(i int) (*decodedBlock, error) {
	if s.cacheBlk == i && s.cache != nil {
		return s.cache, nil
	}
	d, err := s.decodeBlockUncached(i)
	if err != nil {
		return nil, err
	}
	s.cacheBlk, s.cache = i, d
	return d, nil
}

// decodeBlockUncached decodes without touching the probe cache (block
// iterators use it so merges do not evict the probe cache).
func (s *segment) decodeBlockUncached(i int) (*decodedBlock, error) {
	m := s.blocks[i]
	if m.off < 0 || m.off+m.length > len(s.data) {
		return nil, corrupt("block", "block %d spans [%d,%d) of %d data bytes", i, m.off, m.off+m.length, len(s.data))
	}
	payload, err := decompressBlock(s.data[m.off : m.off+m.length])
	if err != nil {
		return nil, err
	}
	r := &byteReader{b: payload}
	nU, err := r.uvarint("block")
	if err != nil {
		return nil, err
	}
	n := int(nU)
	if n != m.rows || n <= 0 || n > blockRows {
		return nil, corrupt("block", "block %d declares %d rows, index says %d", i, n, m.rows)
	}
	d := &decodedBlock{
		aIdx:   make([]uint64, n),
		bIdx:   make([]uint64, n),
		vers:   make([]int64, n),
		valOff: make([]int, n+1),
	}
	// Column A.
	prev, err := r.uvarint("block")
	if err != nil {
		return nil, err
	}
	d.aIdx[0] = prev
	for k := 1; k < n; k++ {
		delta, err := r.uvarint("block")
		if err != nil {
			return nil, err
		}
		prev += delta
		d.aIdx[k] = prev
	}
	// Column B.
	width := bitWidth(uint64(len(s.dict) - 1))
	bBytes, err := r.bytes((n*int(width)+7)/8, "block")
	if err != nil {
		return nil, err
	}
	if err := unpackBits(bBytes, n, width, d.bIdx, "block"); err != nil {
		return nil, err
	}
	for k := 0; k < n; k++ {
		if d.aIdx[k] >= uint64(len(s.dict)) || d.bIdx[k] >= uint64(len(s.dict)) {
			return nil, corrupt("block", "row %d references dictionary index beyond %d", k, len(s.dict))
		}
	}
	// Tombstones.
	if d.tomb, err = r.bytes((n+7)/8, "block"); err != nil {
		return nil, err
	}
	// Versions.
	var vprev int64
	for k := 0; k < n; k++ {
		delta, err := r.varint("block")
		if err != nil {
			return nil, err
		}
		vprev += delta
		d.vers[k] = vprev
	}
	// Values.
	total := 0
	for k := 0; k < n; k++ {
		l, err := r.uvarint("block")
		if err != nil {
			return nil, err
		}
		if l > uint64(r.remaining()) {
			return nil, corrupt("block", "row %d value length %d exceeds remaining payload", k, l)
		}
		d.valOff[k] = total
		total += int(l)
	}
	d.valOff[n] = total
	if d.vals, err = r.bytes(total, "block"); err != nil {
		return nil, err
	}
	return d, nil
}

// findBlock returns the index of the only block that can contain k, or
// -1 when the fences exclude every block.
func (s *segment) findBlock(k Key) int {
	i := sort.Search(len(s.blocks), func(b int) bool { return !keyLess(s.blocks[b].last, k) })
	if i == len(s.blocks) || keyLess(k, s.blocks[i].first) {
		return -1
	}
	return i
}

// get returns the row for k, if present. bloomStats receives the
// filter outcome (probe, negative, false positive) when non-nil.
func (s *segment) get(k Key, st *Stats) (row, bool) {
	if keyLess(k, s.minKey) || keyLess(s.maxKey, k) {
		return row{}, false
	}
	if st != nil {
		st.BloomProbes++
	}
	if !s.filter.test(k) {
		if st != nil {
			st.BloomNegatives++
		}
		return row{}, false
	}
	// The dictionary is a second cheap filter: a digest absent from it
	// cannot key any row.
	ai := dictIndex(s.dict, k.A)
	bi := dictIndex(s.dict, k.B)
	if int(ai) >= len(s.dict) || s.dict[ai] != uint64(k.A) ||
		int(bi) >= len(s.dict) || s.dict[bi] != uint64(k.B) {
		if st != nil {
			st.BloomFalsePositives++
		}
		return row{}, false
	}
	bIdx := s.findBlock(k)
	if bIdx < 0 {
		if st != nil {
			st.BloomFalsePositives++
		}
		return row{}, false
	}
	d, err := s.decodeBlock(bIdx)
	if err != nil {
		return row{}, false
	}
	n := len(d.aIdx)
	i := sort.Search(n, func(r int) bool {
		if d.aIdx[r] != ai {
			return d.aIdx[r] > ai
		}
		return d.bIdx[r] >= bi
	})
	if i == n || d.aIdx[i] != ai || d.bIdx[i] != bi {
		if st != nil {
			st.BloomFalsePositives++
		}
		return row{}, false
	}
	return s.rowAt(d, i), true
}

// segIter streams a segment's rows in key order, one decoded block at
// a time (bypassing the probe cache so merges do not evict it).
type segIter struct {
	seg *segment
	blk int
	pos int
	dec *decodedBlock
	err error
}

func newSegIter(s *segment) *segIter { return &segIter{seg: s, blk: -1} }

func (it *segIter) next() (row, bool) {
	for {
		if it.dec != nil && it.pos < len(it.dec.aIdx) {
			r := it.seg.rowAt(it.dec, it.pos)
			it.pos++
			return r, true
		}
		it.blk++
		if it.err != nil || it.blk >= len(it.seg.blocks) {
			return row{}, false
		}
		d, err := it.seg.decodeBlockUncached(it.blk)
		if err != nil {
			it.err = err
			return row{}, false
		}
		it.dec, it.pos = d, 0
	}
}

// encodeFile serializes the segment to its on-disk form.
func (s *segment) encodeFile() []byte {
	out := append([]byte(nil), segMagic...)

	// HEAD: id, rows, tombs, modeled, fences.
	h := putUvarint(nil, s.id)
	h = putUvarint(h, uint64(s.rows))
	h = putUvarint(h, uint64(s.tombs))
	h = putUvarint(h, uint64(s.modeled))
	h = appendKey(h, s.minKey)
	h = appendKey(h, s.maxKey)
	out = appendSection(out, "HEAD", h)

	// DICT: delta varints of the sorted digests, in a compressed block.
	d := putUvarint(nil, uint64(len(s.dict)))
	var prev uint64
	for i, v := range s.dict {
		if i == 0 {
			d = putUvarint(d, v)
		} else {
			d = putUvarint(d, v-prev)
		}
		prev = v
	}
	out = appendSection(out, "DICT", compressBlock(nil, d))

	// BLOM: word count + little-endian words.
	bl := putUvarint(nil, uint64(len(s.filter.bits)))
	var w [8]byte
	for _, word := range s.filter.bits {
		binary.LittleEndian.PutUint64(w[:], word)
		bl = append(bl, w[:]...)
	}
	out = appendSection(out, "BLOM", bl)

	// BIDX: per-block fences and lengths; offsets are cumulative.
	bi := putUvarint(nil, uint64(len(s.blocks)))
	for _, m := range s.blocks {
		bi = appendKey(bi, m.first)
		bi = appendKey(bi, m.last)
		bi = putUvarint(bi, uint64(m.rows))
		bi = putUvarint(bi, uint64(m.length))
	}
	out = appendSection(out, "BIDX", bi)

	// DATA: the concatenated (already individually checksummed) blocks.
	out = appendSection(out, "DATA", s.data)
	return out
}

func appendKey(b []byte, k Key) []byte {
	var w [16]byte
	binary.LittleEndian.PutUint64(w[0:8], uint64(k.A))
	binary.LittleEndian.PutUint64(w[8:16], uint64(k.B))
	return append(b, w[:]...)
}

func readKey(r *byteReader, section string) (Key, error) {
	b, err := r.bytes(16, section)
	if err != nil {
		return Key{}, err
	}
	return Key{
		A: Digest(binary.LittleEndian.Uint64(b[0:8])),
		B: Digest(binary.LittleEndian.Uint64(b[8:16])),
	}, nil
}

// decodeSegmentFile parses and validates a segment file. Every section
// checksum is verified here; block payload checksums are verified
// lazily on first decode.
func decodeSegmentFile(raw []byte) (*segment, error) {
	r := &byteReader{b: raw}
	magic, err := r.bytes(len(segMagic), "magic")
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(magic, segMagic) {
		return nil, corrupt("magic", "not a pairstore segment (magic %q)", magic)
	}
	s := &segment{cacheBlk: -1}

	head, err := readSection(r, "HEAD")
	if err != nil {
		return nil, err
	}
	hr := &byteReader{b: head}
	if s.id, err = hr.uvarint("HEAD"); err != nil {
		return nil, err
	}
	rows, err := hr.uvarint("HEAD")
	if err != nil {
		return nil, err
	}
	tombs, err := hr.uvarint("HEAD")
	if err != nil {
		return nil, err
	}
	modeled, err := hr.uvarint("HEAD")
	if err != nil {
		return nil, err
	}
	if rows > 1<<40 || tombs > rows {
		return nil, corrupt("HEAD", "implausible rows=%d tombs=%d", rows, tombs)
	}
	s.rows, s.tombs, s.modeled = int(rows), int(tombs), int64(modeled)
	if s.minKey, err = readKey(hr, "HEAD"); err != nil {
		return nil, err
	}
	if s.maxKey, err = readKey(hr, "HEAD"); err != nil {
		return nil, err
	}

	dictSec, err := readSection(r, "DICT")
	if err != nil {
		return nil, err
	}
	dictRaw, err := decompressBlock(dictSec)
	if err != nil {
		return nil, err
	}
	dr := &byteReader{b: dictRaw}
	dn, err := dr.uvarint("DICT")
	if err != nil {
		return nil, err
	}
	if dn > uint64(len(dictRaw))+1 || dn > 1<<32 {
		return nil, corrupt("DICT", "implausible dictionary size %d", dn)
	}
	s.dict = make([]uint64, dn)
	var prev uint64
	for i := range s.dict {
		v, err := dr.uvarint("DICT")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = v
		} else {
			next := prev + v
			if v == 0 || next < prev {
				return nil, corrupt("DICT", "dictionary not strictly increasing at %d", i)
			}
			prev = next
		}
		s.dict[i] = prev
	}
	if s.rows > 0 && len(s.dict) == 0 {
		return nil, corrupt("DICT", "%d rows with an empty dictionary", s.rows)
	}

	blom, err := readSection(r, "BLOM")
	if err != nil {
		return nil, err
	}
	br := &byteReader{b: blom}
	words, err := br.uvarint("BLOM")
	if err != nil {
		return nil, err
	}
	if words > uint64(br.remaining()/8)+1 {
		return nil, corrupt("BLOM", "declared %d words, payload holds %d", words, br.remaining()/8)
	}
	s.filter.bits = make([]uint64, words)
	for i := range s.filter.bits {
		wb, err := br.bytes(8, "BLOM")
		if err != nil {
			return nil, err
		}
		s.filter.bits[i] = binary.LittleEndian.Uint64(wb)
	}

	bidx, err := readSection(r, "BIDX")
	if err != nil {
		return nil, err
	}
	ir := &byteReader{b: bidx}
	nBlocks, err := ir.uvarint("BIDX")
	if err != nil {
		return nil, err
	}
	if nBlocks > uint64(len(raw)) {
		return nil, corrupt("BIDX", "implausible block count %d", nBlocks)
	}
	s.blocks = make([]blockMeta, nBlocks)
	off, totalRows := 0, 0
	for i := range s.blocks {
		m := &s.blocks[i]
		if m.first, err = readKey(ir, "BIDX"); err != nil {
			return nil, err
		}
		if m.last, err = readKey(ir, "BIDX"); err != nil {
			return nil, err
		}
		rws, err := ir.uvarint("BIDX")
		if err != nil {
			return nil, err
		}
		ln, err := ir.uvarint("BIDX")
		if err != nil {
			return nil, err
		}
		if rws == 0 || rws > blockRows || ln > uint64(len(raw)) {
			return nil, corrupt("BIDX", "block %d: implausible rows=%d len=%d", i, rws, ln)
		}
		m.rows, m.off, m.length = int(rws), off, int(ln)
		off += int(ln)
		totalRows += int(rws)
	}
	if totalRows != s.rows {
		return nil, corrupt("BIDX", "blocks hold %d rows, header declares %d", totalRows, s.rows)
	}

	if s.data, err = readSection(r, "DATA"); err != nil {
		return nil, err
	}
	if off != len(s.data) {
		return nil, corrupt("DATA", "block index spans %d bytes, data section holds %d", off, len(s.data))
	}
	s.diskBytes = int64(len(raw))
	return s, nil
}
