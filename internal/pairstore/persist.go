package pairstore

// Persistence: a JSON manifest at path plus a content-addressed sidecar
// directory of columnar segment files.
//
//	<path>               manifest (format 2): levels → segment filenames,
//	                     the mutable log's entries, counters
//	<path>.segments/     seg-<sha256[:16]>.rps, one per sealed segment
//
// Segment files are immutable and named by the hash of their contents,
// so a re-save after a warm restart rewrites nothing that already
// exists, replication can sync by filename, and a crashed save leaves
// at worst unreferenced files (removed by the GC sweep on the next
// save) and *.tmp debris — never a manifest pointing at a torn file.
// Every write is temp-file + rename in the same directory, the same
// atomicity protocol the rest of the repo uses for manifests.
//
// Format 1 (the pre-columnar JSON segment log) is still read: legacy
// entries are replayed into the mutable log first-write-wins, and the
// next Save rewrites the store in format 2.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	manifestFormatLegacy   = 1
	manifestFormatColumnar = 2
)

// manifestDoc is the format-2 manifest.
type manifestDoc struct {
	Format int `json:"format"`
	// Levels lists the sealed segment filenames per tier, innermost
	// order matching Store.levels (oldest first within a level).
	Levels [][]string `json:"levels"`
	// Mem is the mutable log, in append order (tombstones included);
	// compact marshaling keeps embedded raw values byte-identical.
	Mem     []Entry `json:"mem,omitempty"`
	NextSeg uint64  `json:"next_seg"`
	Live    int     `json:"live"`
	Stats   Stats   `json:"stats"`
}

// legacyDoc is the format-1 on-disk form.
type legacyDoc struct {
	Format   int `json:"format"`
	Segments []struct {
		ID      int     `json:"id"`
		Sealed  bool    `json:"sealed"`
		Entries []Entry `json:"entries"`
	} `json:"segments"`
	Stats Stats `json:"stats"`
}

// segmentDir is the sidecar directory holding a store's segment files.
func segmentDir(path string) string { return path + ".segments" }

// segmentFileName is the content-addressed name of an encoded segment.
func segmentFileName(raw []byte) string {
	sum := sha256.Sum256(raw)
	return fmt.Sprintf("seg-%s.rps", hex.EncodeToString(sum[:8]))
}

// writeFileAtomic writes data to path via a temp file + rename in the
// same directory.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Save writes the store to path: sealed segments as content-addressed
// files under path+".segments", then the manifest, atomically. Already
// persisted segments are not rewritten (content addressing makes the
// check a filename comparison); unreferenced segment files and stale
// temp files are swept afterwards.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	dir := segmentDir(path)
	needDir := false
	for _, level := range s.levels {
		if len(level) > 0 {
			needDir = true
		}
	}
	if needDir {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	doc := manifestDoc{
		Format:  manifestFormatColumnar,
		Levels:  make([][]string, len(s.levels)),
		NextSeg: s.nextSeg,
		Live:    s.live,
		Stats:   s.stats,
	}
	referenced := make(map[string]bool)
	for l, level := range s.levels {
		doc.Levels[l] = make([]string, len(level))
		for i, seg := range level {
			if seg.file == "" {
				raw := seg.encodeFile()
				name := segmentFileName(raw)
				full := filepath.Join(dir, name)
				if _, err := os.Stat(full); err != nil {
					if err := writeFileAtomic(full, raw); err != nil {
						return err
					}
				}
				seg.file = name
				seg.diskBytes = int64(len(raw))
			}
			doc.Levels[l][i] = seg.file
			referenced[seg.file] = true
		}
	}
	for _, me := range s.mem.entries {
		doc.Mem = append(doc.Mem, me.e)
	}

	// Compact marshaling keeps embedded raw values byte-identical across
	// a Save/Load round trip (indentation would reformat them).
	buf, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(path, append(buf, '\n')); err != nil {
		return err
	}

	// GC: drop unreferenced segment files and temp debris. Best-effort —
	// an orphan costs disk, never correctness.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, de := range entries {
			name := de.Name()
			if strings.HasSuffix(name, ".tmp") ||
				(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".rps") && !referenced[name]) {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	return nil
}

// Load reads a store saved with Save. Unknown segment files in the
// sidecar directory are ignored (a crashed save may leave orphans); a
// referenced segment that is missing, truncated, or corrupt is a
// *CorruptError naming the file.
func Load(path string) (*Store, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("pairstore: %s: %w", path, err)
	}
	switch probe.Format {
	case manifestFormatColumnar:
		return loadColumnar(path, raw)
	case manifestFormatLegacy:
		return loadLegacy(path, raw)
	default:
		return nil, fmt.Errorf("pairstore: %s: unknown format %d", path, probe.Format)
	}
}

func loadColumnar(path string, raw []byte) (*Store, error) {
	var doc manifestDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("pairstore: %s: %w", path, err)
	}
	s := New()
	dir := segmentDir(path)
	s.levels = make([][]*segment, len(doc.Levels))
	for l, names := range doc.Levels {
		for _, name := range names {
			full := filepath.Join(dir, name)
			segRaw, err := os.ReadFile(full)
			if err != nil {
				return nil, &CorruptError{Path: full, Section: "file", Reason: err.Error()}
			}
			seg, err := decodeSegmentFile(segRaw)
			if err != nil {
				if ce, ok := err.(*CorruptError); ok {
					ce.Path = full
				}
				return nil, err
			}
			seg.file = name
			s.levels[l] = append(s.levels[l], seg)
		}
	}
	for _, e := range doc.Mem {
		s.mem.add(e)
	}
	s.nextSeg = doc.NextSeg
	s.live = doc.Live
	s.stats = doc.Stats
	resetDerivedStats(&s.stats)
	return s, nil
}

func loadLegacy(path string, raw []byte) (*Store, error) {
	var doc legacyDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("pairstore: %s: %w", path, err)
	}
	s := New()
	sort.SliceStable(doc.Segments, func(i, j int) bool {
		return doc.Segments[i].ID < doc.Segments[j].ID
	})
	// Replay the legacy log first-write-wins into the mutable log; the
	// next Save rewrites it columnar.
	for _, seg := range doc.Segments {
		for _, e := range seg.Entries {
			if _, ok := s.mem.index[e.Key]; ok {
				continue
			}
			e.Tombstone = false
			s.mem.add(e)
			s.live++
		}
	}
	s.stats = doc.Stats
	resetDerivedStats(&s.stats)
	return s, nil
}

// resetDerivedStats zeroes the fields Stats() recomputes from live
// state; only the monotonic counters survive persistence.
func resetDerivedStats(st *Stats) {
	st.Entries = 0
	st.Segments = 0
	st.Levels = 0
	st.LogEntries = 0
	st.Bytes = 0
	st.DiskBytes = 0
	st.BytesPerPair = 0
	st.IndexResidentBytes = 0
	st.Tombstones = 0
	st.BloomHitRate = 0
}

// LoadOrNew loads the store at path, or returns a fresh one (loaded =
// false) when no store exists there yet. Errors other than absence are
// the CLI persistence lifecycle.
func LoadOrNew(path string) (s *Store, loaded bool, err error) {
	s, err = Load(path)
	if err == nil {
		return s, true, nil
	}
	if os.IsNotExist(err) {
		return New(), false, nil
	}
	return nil, false, err
}

// SealAndSave seals the mutable log (so the next session appends to a
// fresh one) and saves to path.
func (s *Store) SealAndSave(path string) error {
	s.Seal()
	return s.Save(path)
}
