package pairstore

// Low-level codecs shared by the columnar segment format: unsigned and
// zigzag varints, fixed-width bit-packing, and the checksummed section
// container segment files are assembled from. Everything here decodes
// with explicit bounds checks and returns *CorruptError on malformed
// input — segment files cross process boundaries (warm restarts,
// replication), so a flipped bit or a truncated write must surface as a
// structured error, never as a panic.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// CorruptError reports a structurally invalid segment file: a failed
// checksum, a truncated section, or an impossible field value. Path is
// empty when the segment was decoded from memory.
type CorruptError struct {
	Path    string
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("pairstore: corrupt segment: %s: %s", e.Section, e.Reason)
	}
	return fmt.Sprintf("pairstore: corrupt segment %s: %s: %s", e.Path, e.Section, e.Reason)
}

func corrupt(section, format string, args ...interface{}) error {
	return &CorruptError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// putUvarint appends v to b as an unsigned varint.
func putUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// putVarint appends v to b as a zigzag varint.
func putVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// byteReader wraps a byte slice with bounds-checked reads that degrade
// to errors instead of panics.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) uvarint(section string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corrupt(section, "truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint(section string) (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, corrupt(section, "truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes(n int, section string) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, corrupt(section, "truncated: need %d bytes at offset %d of %d", n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

// bitWidth returns the number of bits needed to represent v.
func bitWidth(v uint64) uint {
	var w uint
	for v > 0 {
		w++
		v >>= 1
	}
	return w
}

// packBits appends n values at the given fixed bit width (0..64) to b,
// little-endian within a running 64-bit buffer. Width 0 appends nothing.
func packBits(b []byte, vals []uint64, width uint) []byte {
	if width == 0 {
		return b
	}
	var acc uint64
	var nbits uint
	for _, v := range vals {
		acc |= (v & widthMask(width)) << nbits
		nbits += width
		for nbits >= 8 {
			b = append(b, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		b = append(b, byte(acc))
	}
	return b
}

func widthMask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (1 << width) - 1
}

// unpackBits decodes n values of the given width from b into out.
func unpackBits(b []byte, n int, width uint, out []uint64, section string) error {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = 0
		}
		return nil
	}
	need := (n*int(width) + 7) / 8
	if need > len(b) {
		return corrupt(section, "bit-packed column truncated: need %d bytes, have %d", need, len(b))
	}
	var acc uint64
	var nbits uint
	pos := 0
	for i := 0; i < n; i++ {
		for nbits < width {
			acc |= uint64(b[pos]) << nbits
			pos++
			nbits += 8
		}
		out[i] = acc & widthMask(width)
		acc >>= width
		nbits -= width
	}
	return nil
}

// Section container. A segment file is a magic string followed by
// tagged sections, each independently checksummed:
//
//	[4-byte tag][u32 byte length][u32 crc32(payload)][payload]
//
// Readers locate sections sequentially; any truncation or checksum
// mismatch is a *CorruptError naming the section.

var segMagic = []byte("RKPS0002")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendSection(dst []byte, tag string, payload []byte) []byte {
	dst = append(dst, tag[:4]...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readSection reads the next section, verifying its tag and checksum.
func readSection(r *byteReader, wantTag string) ([]byte, error) {
	tag, err := r.bytes(4, wantTag)
	if err != nil {
		return nil, err
	}
	if string(tag) != wantTag {
		return nil, corrupt(wantTag, "unexpected section tag %q", tag)
	}
	hdr, err := r.bytes(8, wantTag)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	payload, err := r.bytes(int(n), wantTag)
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, corrupt(wantTag, "checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	return payload, nil
}

// Block container codecs.
const (
	codecRaw   = 0
	codecFlate = 1
)

// compressBlock frames one block payload: a codec byte, the raw length,
// the stored length, a crc over the stored bytes, then the stored bytes
// (flate-compressed when that actually shrinks the payload).
func compressBlock(dst, payload []byte) []byte {
	stored := payload
	codec := byte(codecRaw)
	var buf bytes.Buffer
	zw, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	if _, err := zw.Write(payload); err == nil && zw.Close() == nil && buf.Len() < len(payload) {
		stored = buf.Bytes()
		codec = codecFlate
	}
	dst = append(dst, codec)
	dst = putUvarint(dst, uint64(len(payload)))
	dst = putUvarint(dst, uint64(len(stored)))
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(stored, crcTable))
	dst = append(dst, sum[:]...)
	return append(dst, stored...)
}

// decompressBlock reverses compressBlock, verifying the checksum and
// the decompressed length.
func decompressBlock(b []byte) ([]byte, error) {
	r := &byteReader{b: b}
	codecB, err := r.bytes(1, "block")
	if err != nil {
		return nil, err
	}
	rawLen, err := r.uvarint("block")
	if err != nil {
		return nil, err
	}
	if rawLen > 1<<30 {
		return nil, corrupt("block", "implausible raw length %d", rawLen)
	}
	storedLen, err := r.uvarint("block")
	if err != nil {
		return nil, err
	}
	sumB, err := r.bytes(4, "block")
	if err != nil {
		return nil, err
	}
	stored, err := r.bytes(int(storedLen), "block")
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(stored, crcTable); got != binary.LittleEndian.Uint32(sumB) {
		return nil, corrupt("block", "checksum mismatch: stored %08x, computed %08x",
			binary.LittleEndian.Uint32(sumB), got)
	}
	switch codecB[0] {
	case codecRaw:
		if uint64(len(stored)) != rawLen {
			return nil, corrupt("block", "raw block length %d != declared %d", len(stored), rawLen)
		}
		return stored, nil
	case codecFlate:
		zr := flate.NewReader(bytes.NewReader(stored))
		out := make([]byte, 0, rawLen)
		buf := make([]byte, 32*1024)
		for {
			n, err := zr.Read(buf)
			out = append(out, buf[:n]...)
			if uint64(len(out)) > rawLen {
				return nil, corrupt("block", "decompressed past declared length %d", rawLen)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, corrupt("block", "flate: %v", err)
			}
		}
		if uint64(len(out)) != rawLen {
			return nil, corrupt("block", "decompressed %d bytes, declared %d", len(out), rawLen)
		}
		return out, nil
	default:
		return nil, corrupt("block", "unknown codec %d", codecB[0])
	}
}
