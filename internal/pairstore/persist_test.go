package pairstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadColumnarRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s := New()
	digest := DigestFunc("corpus", "forensics", 1)
	for i := 0; i < 300; i++ {
		s.Put(Entry{Key: PairKey(digest, i, i+1), Version: 300, Value: json.RawMessage(`{"r":1}`)})
	}
	s.Seal()
	for i := 300; i < 400; i++ {
		s.Put(Entry{Key: PairKey(digest, i, i+1), Version: 400})
	}
	s.Delete(PairKey(digest, 0, 1)) // a tombstone in the mutable log
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	dir := segmentDir(path)
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("segment dir: %v, %d files (want 1)", err, len(files))
	}
	name := files[0].Name()
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".rps") {
		t.Fatalf("unexpected segment filename %q", name)
	}

	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 399 {
		t.Fatalf("reloaded len = %d, want 399", r.Len())
	}
	if r.Has(PairKey(digest, 0, 1)) {
		t.Fatal("reloaded store forgot the tombstone")
	}
	if e, ok := r.Get(PairKey(digest, 5, 6)); !ok || string(e.Value) != `{"r":1}` {
		t.Fatalf("reloaded value = %+v ok=%v", e, ok)
	}
	st := r.Stats()
	if st.DiskBytes == 0 || st.BytesPerPair <= 0 {
		t.Fatalf("reloaded stats lack disk figures: %+v", st)
	}
	if st.Puts != 400 {
		t.Fatalf("persisted counters lost: %+v", st)
	}

	// Content addressing: a second save must not rewrite the segment.
	info1, _ := os.Stat(filepath.Join(dir, name))
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	info2, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("segment file replaced instead of reused: %v", err)
	}
	if !info1.ModTime().Equal(info2.ModTime()) {
		t.Fatal("idempotent re-save rewrote the segment file")
	}
}

// TestCrashRecovery simulates a save interrupted between writing
// segment files and renaming the manifest: orphan segment and temp
// files must not break Load, and the next Save must sweep them.
func TestCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s := New()
	for i := 0; i < 50; i++ {
		s.Put(Entry{Key: Key{A: Digest(i), B: Digest(i + 1)}})
	}
	if err := s.SealAndSave(path); err != nil {
		t.Fatal(err)
	}
	dir := segmentDir(path)
	// Crash debris: an orphan segment (written, never referenced because
	// the manifest rename never happened) and a torn temp file.
	orphan := filepath.Join(dir, "seg-deadbeefdeadbeef.rps")
	if err := os.WriteFile(orphan, []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-cafe.rps.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Load(path)
	if err != nil {
		t.Fatalf("load with crash debris: %v", err)
	}
	if r.Len() != 50 {
		t.Fatalf("reloaded len = %d", r.Len())
	}
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("save did not sweep the orphan segment")
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".tmp") {
			t.Fatalf("save left temp debris %s", f.Name())
		}
	}
}

// TestLoadCorruptSegment checks that a torn or bit-flipped referenced
// segment surfaces as a *CorruptError naming the file.
func TestLoadCorruptSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s := New()
	for i := 0; i < 200; i++ {
		s.Put(Entry{Key: Key{A: Digest(i * 3), B: Digest(i*3 + 1)}})
	}
	if err := s.SealAndSave(path); err != nil {
		t.Fatal(err)
	}
	dir := segmentDir(path)
	files, _ := os.ReadDir(dir)
	segPath := filepath.Join(dir, files[0].Name())
	raw, _ := os.ReadFile(segPath)

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x10
	for name, mut := range map[string][]byte{
		"truncated": raw[:len(raw)/2],
		"bit-flip":  flipped,
	} {
		if err := os.WriteFile(segPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: Load error %T (%v) is not *CorruptError", name, err, err)
		}
		if ce.Path != segPath {
			t.Fatalf("%s: CorruptError.Path = %q, want %q", name, ce.Path, segPath)
		}
	}
	// Missing file entirely.
	os.Remove(segPath)
	_, err := Load(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("missing segment: error %T is not *CorruptError", err)
	}
}

// TestLoadLegacyFormat1 keeps warm restarts working across the engine
// swap: stores saved by the pre-columnar code must load.
func TestLoadLegacyFormat1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	legacy := `{"format":1,"segments":[` +
		`{"id":1,"sealed":true,"entries":[{"key":{"a":5,"b":6},"version":2,"value":{"x":1}}]},` +
		`{"id":0,"sealed":true,"entries":[{"key":{"a":1,"b":2},"version":1},{"key":{"a":5,"b":6},"version":1,"value":{"x":0}}]}` +
		`],"stats":{"puts":3,"dup_puts":4,"served_pairs":7}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("legacy len = %d, want 2", s.Len())
	}
	// First write wins, in segment-ID order: segment 0's value for (5,6).
	if e, ok := s.Get(Key{A: 5, B: 6}); !ok || string(e.Value) != `{"x":0}` {
		t.Fatalf("legacy first-write-wins broken: %+v ok=%v", e, ok)
	}
	st := s.Stats()
	if st.Puts != 3 || st.DupPuts != 4 || st.ServedPairs != 7 {
		t.Fatalf("legacy counters lost: %+v", st)
	}
	// A columnar re-save upgrades the format in place.
	if err := s.SealAndSave(path); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || !r.Has(Key{A: 1, B: 2}) {
		t.Fatal("format upgrade lost entries")
	}
}
