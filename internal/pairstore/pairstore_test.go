package pairstore

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

func keyOf(i, j int) Key {
	d := DigestFunc("ref", "app", 7)
	return PairKey(d, i, j)
}

func TestDigestDeterministicAndDistinct(t *testing.T) {
	a := DigestItem("corpus", "forensics", 7, 3)
	if b := DigestItem("corpus", "forensics", 7, 3); b != a {
		t.Fatalf("digest not deterministic: %x vs %x", a, b)
	}
	variants := []Digest{
		DigestItem("corpus", "forensics", 7, 4),
		DigestItem("corpus", "forensics", 8, 3),
		DigestItem("corpus", "microscopy", 7, 3),
		DigestItem("other", "forensics", 7, 3),
		DigestItem("corpusf", "orensics", 7, 3), // boundary shift
	}
	// Regression: with a variable-length seed/item encoding these two
	// lineages collided (a data byte mimicking the separator).
	if DigestItem("ref", "app", 0xFD, 0x1FD) == DigestItem("ref", "app", 0xFDFD, 1) {
		t.Fatal("seed/item byte-boundary shift collides")
	}
	seen := map[Digest]bool{a: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides: %x", i, v)
		}
		seen[v] = true
	}
}

func TestDigestStableUnderGrowth(t *testing.T) {
	// The digest of item i must not depend on the dataset size: that is
	// the property that makes append-only growth reusable.
	d := DigestFunc("corpus", "forensics", 7)
	before := make([]Digest, 10)
	for i := range before {
		before[i] = d(i)
	}
	// "Grow" the dataset: same lineage, more items — old digests fixed.
	for i := range before {
		if got := DigestItem("corpus", "forensics", 7, i); got != before[i] {
			t.Fatalf("item %d digest changed under growth", i)
		}
	}
}

func TestPutGetAppendOnly(t *testing.T) {
	s := New()
	e1 := Entry{Key: keyOf(0, 1), Version: 4, Value: json.RawMessage(`1`)}
	if !s.Put(e1) {
		t.Fatal("first Put rejected")
	}
	if s.Put(Entry{Key: keyOf(0, 1), Version: 5, Value: json.RawMessage(`2`)}) {
		t.Fatal("duplicate Put accepted")
	}
	got, ok := s.Get(keyOf(0, 1))
	if !ok || string(got.Value) != "1" || got.Version != 4 {
		t.Fatalf("Get = %+v, %v; want first write", got, ok)
	}
	if s.Has(keyOf(0, 2)) {
		t.Fatal("Has reports an absent key")
	}
	st := s.Stats()
	if st.Puts != 1 || st.DupPuts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotImmutable(t *testing.T) {
	s := New()
	s.Put(Entry{Key: keyOf(0, 1)})
	snap := s.Snapshot()
	s.Put(Entry{Key: keyOf(0, 2)})
	if !snap.Has(keyOf(0, 1)) {
		t.Fatal("snapshot lost a resident key")
	}
	if snap.Has(keyOf(0, 2)) {
		t.Fatal("snapshot observed a later append")
	}
	if snap.Len() != 1 || s.Len() != 2 {
		t.Fatalf("Len: snap %d store %d", snap.Len(), s.Len())
	}
	var nilSnap *Snapshot
	if nilSnap.Has(keyOf(0, 1)) || nilSnap.Len() != 0 {
		t.Fatal("nil snapshot must be empty")
	}
}

func TestMergeBatch(t *testing.T) {
	s := New()
	s.Put(Entry{Key: keyOf(0, 1)})
	b := NewBatch()
	b.Add(Entry{Key: keyOf(0, 1)}) // dup
	b.Add(Entry{Key: keyOf(0, 2), Value: json.RawMessage(`9`)})
	if got := s.Merge(b); got != 1 {
		t.Fatalf("Merge added %d, want 1", got)
	}
	if b.Len() != 2 || b.Bytes() != 2*EntryOverheadBytes+1 {
		t.Fatalf("batch len %d bytes %d", b.Len(), b.Bytes())
	}
	if s.Merge(nil) != 0 {
		t.Fatal("nil batch merged entries")
	}
}

func TestSealAndCompact(t *testing.T) {
	s := New()
	s.Put(Entry{Key: keyOf(0, 1), Value: json.RawMessage(`1`)})
	s.Seal()
	s.Seal() // empty active segment: no-op
	s.Put(Entry{Key: keyOf(0, 2)})
	if st := s.Stats(); st.Segments != 2 || st.LogEntries != 2 {
		t.Fatalf("after seal: %+v", st)
	}
	// Craft a duplicate in the log (possible across Load-merged logs):
	// bypass the index check by merging two saved stores is overkill;
	// Compact must simply preserve distinct keys and count drops.
	dropped := s.Compact()
	if dropped != 0 {
		t.Fatalf("compact dropped %d from a dup-free log", dropped)
	}
	st := s.Stats()
	if st.Segments != 1 || st.LogEntries != 2 || st.Compactions != 1 {
		t.Fatalf("after compact: %+v", st)
	}
	if !s.Has(keyOf(0, 1)) || !s.Has(keyOf(0, 2)) {
		t.Fatal("compact lost keys")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.Put(Entry{Key: keyOf(0, 1), Version: 8, Value: json.RawMessage(`{"r":1}`)})
	s.Seal()
	s.Put(Entry{Key: keyOf(1, 2), Version: 12})
	s.RecordServe(5, 1, 160, 48)
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", r.Len())
	}
	e, ok := r.Get(keyOf(0, 1))
	if !ok || string(e.Value) != `{"r":1}` || e.Version != 8 {
		t.Fatalf("reloaded entry = %+v, %v", e, ok)
	}
	st := r.Stats()
	if st.ServedPairs != 5 || st.MissedPairs != 1 || st.ReadBytes != 160 {
		t.Fatalf("counters not persisted: %+v", st)
	}
	// The reloaded store accepts appends (active segment reopened).
	if !r.Put(Entry{Key: keyOf(2, 3)}) {
		t.Fatal("reloaded store rejects appends")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestDeltaPairs(t *testing.T) {
	cases := []struct {
		n, base int
		want    int64
	}{
		{10, 0, 45},
		{10, 10, 0},
		{11, 10, 10},     // one appended item pairs with all ten
		{110, 100, 1045}, // 10% growth: 10·100 + 45
		{10, 12, 0},      // base beyond n clamps
		{10, -1, 45},     // negative base clamps
	}
	for _, c := range cases {
		if got := DeltaPairs(c.n, c.base); got != c.want {
			t.Fatalf("DeltaPairs(%d, %d) = %d, want %d", c.n, c.base, got, c.want)
		}
	}
}
