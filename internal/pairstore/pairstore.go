// Package pairstore is the persistent all-pairs result store: a
// content-addressed map from item-digest pairs to comparison results,
// organized as a log-structured store — a small mutable log (memtable)
// in front of tiers of immutable, digest-sorted, columnar,
// block-compressed segments (see segment.go for the layout).
//
// The store is what turns repeated all-pairs workloads into incremental
// ones. The paper's domains — forensics corpora, sequence databases,
// microscopy archives — grow append-only, so when a dataset goes from n
// to n+k items, the k·n + k(k-1)/2 pairs touching new items are the only
// genuinely new work; everything else is already in the store. The
// runtime (rocket/internal/core) consults an immutable Snapshot to skip
// resident pairs before region subdivision, charges the resulting store
// reads and writes through the same virtual-time cost model as ordinary
// I/O, and emits the pairs it did compute into a Batch that the
// scheduler merges back at a deterministic point.
//
// Scale. Billion-pair datasets rule out a fully resident per-pair
// index. Sealed segments keep only a bounded fence index in memory
// (per-block min/max keys, the digest dictionary, a bloom filter —
// O(√pairs + pairs/blockRows), not O(pairs)); probes push the predicate
// down, skipping whole segments by fence and bloom and whole blocks by
// fence, and decode at most one block per hit. Seal promotes the
// memtable into a sorted L0 segment; tiered compaction merges a level
// once it holds compactFanout segments, eliminating superseded entries
// and — when the merge produces the bottom-most segment — tombstones.
//
// Keying. An entry is addressed by the pair of item digests, where a
// digest identifies one item's content within a dataset lineage: it is
// derived from (store ref, application name, dataset seed, item index).
// For the synthetic applications of this reproduction the (seed, index)
// pair IS the item's content — every per-item cost and payload is a pure
// hash of it, independent of the dataset size — so digests are stable
// under append-only growth, which is exactly the property content
// addressing needs. A real deployment would digest the input files
// instead; nothing else would change. The dataset version that produced
// an entry is recorded as provenance, not key material: growing the
// dataset must not invalidate old results.
//
// Determinism. Store contents influence a run only through the Snapshot
// handed to it, and Snapshots are immutable: a snapshot pins the
// memtable prefix and the segment list as of its creation, and neither
// later appends nor Seal/Compact (which only add or replace whole
// immutable segments) change what it reports. The scheduler snapshots at
// job placement and merges batches at job completion, both inside its
// deterministic virtual-time loop, so a served fleet and its offline
// replay observe identical store states at every decision point.
package pairstore

import (
	"encoding/json"
	"sort"
	"sync"
)

// Digest identifies one item's content within a dataset lineage.
type Digest uint64

// Key addresses one pair result: the digests of the left (i) and right
// (j) items, in pair order (i < j positionally; comparisons need not be
// symmetric, so digests are not sorted).
type Key struct {
	A Digest `json:"a"`
	B Digest `json:"b"`
}

// Entry is one stored comparison result.
type Entry struct {
	Key Key `json:"key"`
	// Version is the dataset version (item count) of the run that
	// produced the entry — provenance, not key material.
	Version int `json:"version,omitempty"`
	// Value is the JSON-encoded comparison result; empty for cost-model
	// runs, which store only the fact of completion.
	Value json.RawMessage `json:"value,omitempty"`
	// Tombstone marks a deletion record: the key was retracted and reads
	// must report it absent until a newer entry revives it. Tombstones
	// are eliminated when compaction reaches the bottom level.
	Tombstone bool `json:"tombstone,omitempty"`
}

// EntryOverheadBytes is the modeled on-disk framing cost of one entry
// (key, version, length prefix) used by the charged-I/O model: a store
// entry costs the application's ResultSize plus this overhead. (The
// physical columnar segments land far below this — see Stats.
// BytesPerPair — but the charged model keeps the conservative figure so
// experiment outputs stay comparable across storage engines.)
const EntryOverheadBytes = 24

// DigestItem derives the content digest of one item. ref is the store
// namespace (dataset lineage), app the application name, seed the
// dataset seed; see the package comment for why (seed, item) addresses
// content here.
func DigestItem(ref, app string, seed uint64, item int) Digest {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211 // FNV-64 prime
	}
	for i := 0; i < len(ref); i++ {
		mix(ref[i])
	}
	mix(0xff) // separator: ("ab","c") must not collide with ("a","bc")
	for i := 0; i < len(app); i++ {
		mix(app[i])
	}
	mix(0xfe)
	// Seed and item are mixed at fixed 8-byte width: a variable-length
	// encoding would be ambiguous (a data byte can mimic a separator),
	// letting distinct (seed, item) lineages collide on every digest.
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	mix(0xfd)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(item) >> (8 * i)))
	}
	// Final avalanche (splitmix64) so near-identical inputs spread.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return Digest(h)
}

// DigestFunc returns the per-item digest function of one dataset
// lineage, the form the runtime consumes (core.Config.ItemDigest).
func DigestFunc(ref, app string, seed uint64) func(item int) Digest {
	return func(item int) Digest { return DigestItem(ref, app, seed, item) }
}

// PairKey builds the key for pair (i, j) under the given digest
// function.
func PairKey(digest func(int) Digest, i, j int) Key {
	return Key{A: digest(i), B: digest(j)}
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	// Entries is the number of distinct live keys.
	Entries int `json:"entries"`
	// Segments is the number of log segments (sealed segments plus the
	// mutable log when it holds entries; an empty store reports one, its
	// open log).
	Segments int `json:"segments"`
	// Levels is the number of non-empty compaction tiers.
	Levels int `json:"levels"`
	// LogEntries counts entries across the mutable log and all sealed
	// segments, including superseded entries and tombstones not yet
	// compacted away.
	LogEntries int `json:"log_entries"`
	// Bytes is the modeled log size (values + per-entry overhead), the
	// figure the charged-I/O model uses.
	Bytes int64 `json:"bytes"`
	// DiskBytes is the physical size of the persisted segment files
	// (columnar, compressed); 0 for segments not yet saved.
	DiskBytes int64 `json:"disk_bytes"`
	// BytesPerPair is DiskBytes divided by the entries resident in
	// persisted segments — the storage-efficiency figure the bench gate
	// tracks.
	BytesPerPair float64 `json:"bytes_per_pair"`
	// IndexResidentBytes is the in-memory footprint of the sealed
	// segments' probe structures (fence indexes, digest dictionaries,
	// bloom filters) — bounded, unlike a per-pair map.
	IndexResidentBytes int64 `json:"index_resident_bytes"`
	// Puts counts accepted appends; DupPuts appends ignored because the
	// key was already live.
	Puts    uint64 `json:"puts"`
	DupPuts uint64 `json:"dup_puts"`
	// Deletes counts accepted deletions; Tombstones the deletion records
	// still present in the log.
	Deletes    uint64 `json:"deletes,omitempty"`
	Tombstones int    `json:"tombstones,omitempty"`
	// Seals counts memtable promotions into L0 segments.
	Seals uint64 `json:"seals"`
	// ServedPairs and MissedPairs aggregate runtime outcomes reported
	// back by the scheduler: pairs skipped because they were resident,
	// and planned-resident pairs that had to be recomputed.
	ServedPairs uint64 `json:"served_pairs"`
	MissedPairs uint64 `json:"missed_pairs"`
	// ReadBytes and WriteBytes total the charged store I/O.
	ReadBytes  int64 `json:"read_bytes"`
	WriteBytes int64 `json:"write_bytes"`
	// Compactions counts merge operations (tier merges and full
	// Compact calls); CompactedAway the rows they dropped (superseded
	// entries plus eliminated tombstones).
	Compactions   uint64 `json:"compactions"`
	CompactedAway uint64 `json:"compacted_away"`
	// BloomProbes counts segment point probes that consulted a bloom
	// filter; BloomNegatives the probes the filter answered "definitely
	// absent" without decoding a block; BloomFalsePositives the probes
	// that decoded a block (or searched the dictionary) and found
	// nothing. BloomHitRate is BloomNegatives / BloomProbes.
	BloomProbes         uint64  `json:"bloom_probes"`
	BloomNegatives      uint64  `json:"bloom_negatives"`
	BloomFalsePositives uint64  `json:"bloom_false_positives"`
	BloomHitRate        float64 `json:"bloom_hit_rate"`
}

// memEntry is one mutable-log slot: the entry plus a link to the
// previous occurrence of the same key (−1 if none), which is what lets
// snapshots resolve a key against their pinned prefix.
type memEntry struct {
	e    Entry
	prev int
}

// memtable is the mutable log: entries in append order plus an index
// to each key's latest occurrence. It is never mutated after Seal
// swaps it out, so snapshots can keep reading their pinned prefix.
type memtable struct {
	entries []memEntry
	index   map[Key]int
	modeled int64
	tombs   int
}

func newMemtable() *memtable {
	return &memtable{index: make(map[Key]int)}
}

func (m *memtable) add(e Entry) {
	prev := -1
	if p, ok := m.index[e.Key]; ok {
		prev = p
	}
	m.entries = append(m.entries, memEntry{e: e, prev: prev})
	m.index[e.Key] = len(m.entries) - 1
	m.modeled += entryBytes(e)
	if e.Tombstone {
		m.tombs++
	}
}

// lookup returns the latest occurrence of k among the first limit
// entries. The caller distinguishes live entries from tombstones.
func (m *memtable) lookup(k Key, limit int) (Entry, bool) {
	pos, ok := m.index[k]
	for ok && pos >= limit {
		pos = m.entries[pos].prev
		ok = pos >= 0
	}
	if !ok {
		return Entry{}, false
	}
	return m.entries[pos].e, true
}

const (
	// defaultAutoSeal is the memtable size at which Put seals
	// automatically, bounding the mutable log's memory footprint during
	// bulk ingestion.
	defaultAutoSeal = 1 << 20
	// compactFanout is the tiering trigger: a level holding this many
	// segments is merged into one segment on the next level.
	compactFanout = 4
)

// Store is the mutable, lock-protected store. Runs never touch it
// directly: they read an immutable Snapshot and write through a Batch.
type Store struct {
	mu       sync.Mutex
	mem      *memtable
	levels   [][]*segment // levels[0] = L0 (seal order, oldest first); deeper = older
	nextSeg  uint64
	live     int // distinct keys visible (puts − deletes)
	autoSeal int
	stats    Stats
	// onSeal/onCompact, when non-nil, observe maintenance: onSeal fires
	// after each mutable-log seal with the number of rows promoted,
	// onCompact after each tier merge or full compaction with the number
	// of input segments. Both run with s.mu held and must not call back
	// into the store. See SetMaintenanceHooks.
	onSeal    func(rows int)
	onCompact func(inputs int)
}

// SetMaintenanceHooks installs observers for seals and compactions (the
// observability layer's storage feed). Either may be nil. Hooks are
// invoked synchronously under the store's lock, so they must be cheap
// and must not touch the store. Install before concurrent use.
func (s *Store) SetMaintenanceHooks(onSeal func(rows int), onCompact func(inputs int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSeal, s.onCompact = onSeal, onCompact
}

// New returns an empty store with one open mutable log.
func New() *Store {
	return &Store{mem: newMemtable(), autoSeal: defaultAutoSeal}
}

// SetAutoSealThreshold overrides the memtable size at which Put seals
// automatically (0 restores the default). Smaller thresholds bound
// memory during bulk ingestion at the cost of more L0 segments.
func (s *Store) SetAutoSealThreshold(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = defaultAutoSeal
	}
	s.autoSeal = n
}

// entryBytes is the modeled log footprint of one entry.
func entryBytes(e Entry) int64 {
	return EntryOverheadBytes + int64(len(e.Value))
}

// segmentsNewestFirst flattens the levels into probe order: L0 newest
// seal first, then deeper (older) tiers.
func (s *Store) segmentsNewestFirst() []*segment {
	var out []*segment
	for _, level := range s.levels {
		for i := len(level) - 1; i >= 0; i-- {
			out = append(out, level[i])
		}
	}
	return out
}

// lookupLocked resolves k against the memtable and every segment,
// newest first. found=false means no record at all.
func (s *Store) lookupLocked(k Key) (Entry, bool) {
	if e, ok := s.mem.lookup(k, len(s.mem.entries)); ok {
		return e, true
	}
	for _, level := range s.levels {
		for i := len(level) - 1; i >= 0; i-- {
			if r, ok := level[i].get(k, &s.stats); ok {
				return rowEntry(r), true
			}
		}
	}
	return Entry{}, false
}

func rowEntry(r row) Entry {
	e := Entry{Key: r.key, Version: r.ver, Tombstone: r.tomb}
	if len(r.val) > 0 {
		e.Value = append(json.RawMessage(nil), r.val...)
	}
	return e
}

// Put appends one entry. The store is append-only: a key that is
// already live keeps its first value and Put reports false. (A deleted
// key may be re-put; the new entry shadows the tombstone.)
func (s *Store) Put(e Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(e)
}

func (s *Store) putLocked(e Entry) bool {
	if cur, ok := s.lookupLocked(e.Key); ok && !cur.Tombstone {
		s.stats.DupPuts++
		return false
	}
	e.Tombstone = false
	s.mem.add(e)
	s.live++
	s.stats.Puts++
	if len(s.mem.entries) >= s.autoSeal {
		s.sealLocked()
	}
	return true
}

// Delete retracts a live key by appending a tombstone, reporting
// whether anything was deleted. The record is physically removed when
// compaction reaches the bottom level.
func (s *Store) Delete(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.lookupLocked(k); !ok || cur.Tombstone {
		return false
	}
	s.mem.add(Entry{Key: k, Tombstone: true})
	s.live--
	s.stats.Deletes++
	return true
}

// Merge appends every entry of the batch, in batch order, returning how
// many were new. A nil batch is a no-op.
func (s *Store) Merge(b *Batch) int {
	if b == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, e := range b.entries {
		if s.putLocked(e) {
			added++
		}
	}
	return added
}

// Get returns the entry for k, if live.
func (s *Store) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.lookupLocked(k)
	if !ok || e.Tombstone {
		return Entry{}, false
	}
	return e, true
}

// Has reports whether k is live.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.lookupLocked(k)
	return ok && !e.Tombstone
}

// Len returns the number of distinct live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Seal promotes the mutable log into a sorted L0 segment, so
// subsequent appends start a fresh log run and probes against the
// sealed entries go through the columnar fast path. Sealing an empty
// log is a no-op. Sealing cascades tier merges: a level reaching
// compactFanout segments is merged into the next level.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked()
}

// MaybeSeal seals when the mutable log has reached the auto-seal
// threshold — the entry point background maintenance (the scheduler's
// merge points, rocketd idle moments) calls opportunistically.
func (s *Store) MaybeSeal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.mem.entries) >= s.autoSeal {
		s.sealLocked()
	}
}

func (s *Store) sealLocked() {
	if len(s.mem.entries) == 0 {
		return
	}
	// Collapse per-key chains: the latest occurrence wins. Tombstones
	// survive only if an older segment could hold a shadowed entry.
	anySegments := false
	for _, level := range s.levels {
		if len(level) > 0 {
			anySegments = true
			break
		}
	}
	rows := make([]row, 0, len(s.mem.index))
	dropped := 0
	for k, pos := range s.mem.index {
		e := s.mem.entries[pos].e
		for p := s.mem.entries[pos].prev; p >= 0; p = s.mem.entries[p].prev {
			dropped++ // superseded occurrence collapsed away
		}
		if e.Tombstone && !anySegments {
			dropped++
			continue
		}
		rows = append(rows, row{key: k, ver: e.Version, tomb: e.Tombstone, val: e.Value})
	}
	s.stats.CompactedAway += uint64(dropped)
	if len(rows) > 0 {
		seg := buildSegment(s.nextSeg, rows)
		s.nextSeg++
		if len(s.levels) == 0 {
			s.levels = append(s.levels, nil)
		}
		s.levels[0] = append(s.levels[0], seg)
	}
	s.mem = newMemtable()
	s.stats.Seals++
	if s.onSeal != nil {
		s.onSeal(len(rows))
	}
	s.maybeTierLocked()
}

// maybeTierLocked merges any level that reached the fanout into the
// next level, cascading upward.
func (s *Store) maybeTierLocked() {
	for l := 0; l < len(s.levels); l++ {
		if len(s.levels[l]) < compactFanout {
			continue
		}
		inputs := s.levels[l]
		s.levels[l] = nil
		if l+1 == len(s.levels) {
			s.levels = append(s.levels, nil)
		}
		// Tombstones can be eliminated only when the merge output becomes
		// the bottom-most segment (nothing older can hold shadowed keys).
		dropTombs := len(s.levels[l+1]) == 0
		for d := l + 2; d < len(s.levels); d++ {
			if len(s.levels[d]) > 0 {
				dropTombs = false
			}
		}
		merged, dropped := mergeSegments(s.nextSeg, inputs, dropTombs)
		s.nextSeg++
		if merged != nil {
			s.levels[l+1] = append(s.levels[l+1], merged)
		}
		s.stats.Compactions++
		s.stats.CompactedAway += uint64(dropped)
		if s.onCompact != nil {
			s.onCompact(len(inputs))
		}
	}
}

// Compact merges the entire store — mutable log included — into a
// single bottom-level segment, dropping superseded entries and
// eliminating tombstones, and returns the number of rows dropped.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sealDrop := s.stats.CompactedAway
	if len(s.mem.entries) > 0 {
		s.sealLocked()
	}
	sealDropped := int(s.stats.CompactedAway - sealDrop)
	inputs := make([]*segment, 0)
	for i := len(s.levels) - 1; i >= 0; i-- { // oldest level first
		inputs = append(inputs, s.levels[i]...)
	}
	s.stats.Compactions++
	if s.onCompact != nil {
		s.onCompact(len(inputs))
	}
	if len(inputs) == 0 {
		s.levels = nil
		return sealDropped
	}
	if len(inputs) == 1 && inputs[0].tombs == 0 {
		// Single-segment compaction with nothing to eliminate: keep the
		// segment as-is (no rewrite, no new identity).
		s.levels = [][]*segment{{inputs[0]}}
		return sealDropped
	}
	merged, dropped := mergeSegments(s.nextSeg, inputs, true)
	s.nextSeg++
	if merged != nil {
		s.levels = [][]*segment{{merged}}
	} else {
		s.levels = nil
	}
	s.stats.CompactedAway += uint64(dropped)
	return sealDropped + dropped
}

// mergeSegments k-way-merges the inputs (ordered oldest first) into
// one segment with the given id. Among same-key rows the newest input
// wins; dropTombs eliminates tombstones from the output. Returns nil
// when everything merged away.
func mergeSegments(id uint64, inputs []*segment, dropTombs bool) (*segment, int) {
	// Dictionary: sorted union of the input dictionaries. Dedup below
	// may leave a few unreferenced digests — harmless (the dictionary is
	// O(items), a vanishing fraction of the file).
	var dict []uint64
	for _, in := range inputs {
		dict = append(dict, in.dict...)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	dict = dedupU64(dict)

	est := 0
	iters := make([]*segIter, len(inputs))
	heads := make([]row, len(inputs))
	ok := make([]bool, len(inputs))
	for i, in := range inputs {
		est += in.rows
		iters[i] = newSegIter(in)
		heads[i], ok[i] = iters[i].next()
	}
	b := newSegBuilder(id, dict, est)
	dropped := 0
	for {
		// Smallest head key; ties resolved toward the newest input
		// (highest index), which holds the winning row.
		win := -1
		for i := range heads {
			if !ok[i] {
				continue
			}
			if win < 0 || keyLess(heads[i].key, heads[win].key) ||
				(!keyLess(heads[win].key, heads[i].key) && i > win) {
				win = i
			}
		}
		if win < 0 {
			break
		}
		r := heads[win]
		// Advance every input sitting on the same key; losers drop.
		for i := range heads {
			if ok[i] && heads[i].key == r.key {
				if i != win {
					dropped++
				}
				heads[i], ok[i] = iters[i].next()
			}
		}
		if r.tomb && dropTombs {
			dropped++
			continue
		}
		b.add(r)
	}
	if b.rows == 0 {
		return nil, dropped
	}
	return b.finish(), dropped
}

// RecordServe folds one run's store outcome into the stats: pairs
// served from the store, planned-resident pairs that were absent and
// recomputed, and the charged read/write bytes.
func (s *Store) RecordServe(served, missed uint64, readBytes, writeBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ServedPairs += served
	s.stats.MissedPairs += missed
	s.stats.ReadBytes += readBytes
	s.stats.WriteBytes += writeBytes
}

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.live
	st.LogEntries = len(s.mem.entries)
	st.Bytes = s.mem.modeled
	st.Tombstones = s.mem.tombs
	segCount, diskRows := 0, 0
	for _, level := range s.levels {
		if len(level) > 0 {
			st.Levels++
		}
		for _, seg := range level {
			segCount++
			st.LogEntries += seg.rows
			st.Bytes += seg.modeled
			st.Tombstones += seg.tombs
			st.IndexResidentBytes += seg.indexBytes()
			if seg.diskBytes > 0 {
				st.DiskBytes += seg.diskBytes
				diskRows += seg.rows
			}
		}
	}
	st.Segments = segCount
	if len(s.mem.entries) > 0 || segCount == 0 {
		st.Segments++ // the open mutable log
	}
	if diskRows > 0 {
		st.BytesPerPair = float64(st.DiskBytes) / float64(diskRows)
	}
	if st.BloomProbes > 0 {
		st.BloomHitRate = float64(st.BloomNegatives) / float64(st.BloomProbes)
	}
	return st
}

// Snapshot returns an immutable view of the store. Runs consult the
// snapshot only; concurrent appends, seals, and compactions never
// change what a snapshot reports. Taking a snapshot is O(segments): it
// pins the current mutable-log prefix and the current segment list —
// both never mutated afterward (appends go past the prefix, Seal swaps
// in a fresh log, compaction builds new segments).
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Snapshot{
		s:      s,
		mem:    s.mem,
		memLen: len(s.mem.entries),
		segs:   s.segmentsNewestFirst(),
		live:   s.live,
	}
}

// Snapshot is an immutable point-in-time view of a store. The zero
// value is an empty snapshot.
type Snapshot struct {
	s      *Store
	mem    *memtable
	memLen int
	segs   []*segment // newest first
	live   int
}

// resolve returns the winning record for k at snapshot time.
func (sn *Snapshot) resolve(k Key) (Entry, bool) {
	if e, ok := sn.mem.lookup(k, sn.memLen); ok {
		return e, true
	}
	for _, seg := range sn.segs {
		if r, ok := seg.get(k, &sn.s.stats); ok {
			return rowEntry(r), true
		}
	}
	return Entry{}, false
}

// Has reports whether k was live when the snapshot was taken.
func (sn *Snapshot) Has(k Key) bool {
	if sn == nil || sn.s == nil {
		return false
	}
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()
	e, ok := sn.resolve(k)
	return ok && !e.Tombstone
}

// Get returns the entry for k, if live at snapshot time.
func (sn *Snapshot) Get(k Key) (Entry, bool) {
	if sn == nil || sn.s == nil {
		return Entry{}, false
	}
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()
	e, ok := sn.resolve(k)
	if !ok || e.Tombstone {
		return Entry{}, false
	}
	return e, true
}

// HasMany reports, for each key, whether it was live at snapshot time,
// writing into out (which must be at least len(keys) long). It takes
// the store lock once for the whole batch — delta planners probe
// O(base²) keys at job start, where per-key locking would dominate —
// and probes sealed segments with one sorted merge-walk each, so every
// needed block is decoded at most once per segment (predicate pushdown:
// segments are skipped by fence and bloom, blocks by fence).
func (sn *Snapshot) HasMany(keys []Key, out []bool) {
	if sn == nil || sn.s == nil {
		for i := range keys {
			out[i] = false
		}
		return
	}
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()

	// The mutable log resolves by map lookup; unresolved keys fall
	// through to the sealed segments.
	var pending []int
	for i, k := range keys {
		if e, ok := sn.mem.lookup(k, sn.memLen); ok {
			out[i] = !e.Tombstone
		} else {
			out[i] = false
			if len(sn.segs) > 0 {
				pending = append(pending, i)
			}
		}
	}
	if len(pending) == 0 {
		return
	}
	// Sort the unresolved probes once; each segment is then a single
	// ordered merge-walk, newest segment first (first record wins).
	sort.Slice(pending, func(a, b int) bool {
		return keyLess(keys[pending[a]], keys[pending[b]])
	})
	for _, seg := range sn.segs {
		if len(pending) == 0 {
			break
		}
		next := pending[:0]
		seg.probeSorted(keys, pending, &sn.s.stats, func(i int, r row, found bool) {
			if found {
				out[i] = !r.tomb
			} else {
				next = append(next, i)
			}
		})
		pending = next
	}
}

// Len returns the number of live keys at snapshot time.
func (sn *Snapshot) Len() int {
	if sn == nil {
		return 0
	}
	return sn.live
}

// probeSorted resolves the given probe indices (pre-sorted by key)
// against the segment: handle is called once per index, with the row
// when the segment holds the key. Blocks are decoded at most once.
func (s *segment) probeSorted(keys []Key, idx []int, st *Stats, handle func(i int, r row, found bool)) {
	blk := 0
	for _, i := range idx {
		k := keys[i]
		if keyLess(k, s.minKey) || keyLess(s.maxKey, k) {
			handle(i, row{}, false)
			continue
		}
		st.BloomProbes++
		if !s.filter.test(k) {
			st.BloomNegatives++
			handle(i, row{}, false)
			continue
		}
		for blk < len(s.blocks) && keyLess(s.blocks[blk].last, k) {
			blk++
		}
		if blk == len(s.blocks) || keyLess(k, s.blocks[blk].first) {
			st.BloomFalsePositives++
			handle(i, row{}, false)
			continue
		}
		ai := dictIndex(s.dict, k.A)
		bi := dictIndex(s.dict, k.B)
		if int(ai) >= len(s.dict) || s.dict[ai] != uint64(k.A) ||
			int(bi) >= len(s.dict) || s.dict[bi] != uint64(k.B) {
			st.BloomFalsePositives++
			handle(i, row{}, false)
			continue
		}
		d, err := s.decodeBlock(blk)
		if err != nil {
			handle(i, row{}, false)
			continue
		}
		n := len(d.aIdx)
		r := sort.Search(n, func(x int) bool {
			if d.aIdx[x] != ai {
				return d.aIdx[x] > ai
			}
			return d.bIdx[x] >= bi
		})
		if r == n || d.aIdx[r] != ai || d.bIdx[r] != bi {
			st.BloomFalsePositives++
			handle(i, row{}, false)
			continue
		}
		handle(i, s.rowAt(d, r), true)
	}
}

// Batch collects the entries one run emits, in completion order. It is
// single-writer (the run's event loop) and merged into a Store once the
// run's results are final.
type Batch struct {
	entries []Entry
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Add appends one entry to the batch.
func (b *Batch) Add(e Entry) { b.entries = append(b.entries, e) }

// Len returns the number of collected entries.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// Bytes returns the modeled log footprint of the batch.
func (b *Batch) Bytes() int64 {
	if b == nil {
		return 0
	}
	var total int64
	for _, e := range b.entries {
		total += entryBytes(e)
	}
	return total
}

// DeltaPairs returns how many pairs a delta job over n items with base
// resident items must compute: the new-vs-all set n·(n-1)/2 − b·(b-1)/2
// (every pair touching at least one appended item).
func DeltaPairs(n, base int) int64 {
	if base > n {
		base = n
	}
	if base < 0 {
		base = 0
	}
	t := func(m int) int64 { return int64(m) * int64(m-1) / 2 }
	return t(n) - t(base)
}
