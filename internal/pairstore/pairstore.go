// Package pairstore is the persistent all-pairs result store: a
// content-addressed map from item-digest pairs to comparison results,
// organized as an append-only segment log with an in-memory index.
//
// The store is what turns repeated all-pairs workloads into incremental
// ones. The paper's domains — forensics corpora, sequence databases,
// microscopy archives — grow append-only, so when a dataset goes from n
// to n+k items, the k·n + k(k-1)/2 pairs touching new items are the only
// genuinely new work; everything else is already in the store. The
// runtime (rocket/internal/core) consults an immutable Snapshot to skip
// resident pairs before region subdivision, charges the resulting store
// reads and writes through the same virtual-time cost model as ordinary
// I/O, and emits the pairs it did compute into a Batch that the
// scheduler merges back at a deterministic point.
//
// Keying. An entry is addressed by the pair of item digests, where a
// digest identifies one item's content within a dataset lineage: it is
// derived from (store ref, application name, dataset seed, item index).
// For the synthetic applications of this reproduction the (seed, index)
// pair IS the item's content — every per-item cost and payload is a pure
// hash of it, independent of the dataset size — so digests are stable
// under append-only growth, which is exactly the property content
// addressing needs. A real deployment would digest the input files
// instead; nothing else would change. The dataset version that produced
// an entry is recorded as provenance, not key material: growing the
// dataset must not invalidate old results.
//
// Determinism. Store contents influence a run only through the Snapshot
// handed to it, and Snapshots are immutable. The scheduler snapshots at
// job placement and merges batches at job completion, both inside its
// deterministic virtual-time loop, so a served fleet and its offline
// replay observe identical store states at every decision point.
package pairstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Digest identifies one item's content within a dataset lineage.
type Digest uint64

// Key addresses one pair result: the digests of the left (i) and right
// (j) items, in pair order (i < j positionally; comparisons need not be
// symmetric, so digests are not sorted).
type Key struct {
	A Digest `json:"a"`
	B Digest `json:"b"`
}

// Entry is one stored comparison result.
type Entry struct {
	Key Key `json:"key"`
	// Version is the dataset version (item count) of the run that
	// produced the entry — provenance, not key material.
	Version int `json:"version,omitempty"`
	// Value is the JSON-encoded comparison result; empty for cost-model
	// runs, which store only the fact of completion.
	Value json.RawMessage `json:"value,omitempty"`
}

// EntryOverheadBytes is the modeled on-disk framing cost of one entry
// (key, version, length prefix) used by the charged-I/O model: a store
// entry costs the application's ResultSize plus this overhead.
const EntryOverheadBytes = 24

// DigestItem derives the content digest of one item. ref is the store
// namespace (dataset lineage), app the application name, seed the
// dataset seed; see the package comment for why (seed, item) addresses
// content here.
func DigestItem(ref, app string, seed uint64, item int) Digest {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211 // FNV-64 prime
	}
	for i := 0; i < len(ref); i++ {
		mix(ref[i])
	}
	mix(0xff) // separator: ("ab","c") must not collide with ("a","bc")
	for i := 0; i < len(app); i++ {
		mix(app[i])
	}
	mix(0xfe)
	// Seed and item are mixed at fixed 8-byte width: a variable-length
	// encoding would be ambiguous (a data byte can mimic a separator),
	// letting distinct (seed, item) lineages collide on every digest.
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	mix(0xfd)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(item) >> (8 * i)))
	}
	// Final avalanche (splitmix64) so near-identical inputs spread.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return Digest(h)
}

// DigestFunc returns the per-item digest function of one dataset
// lineage, the form the runtime consumes (core.Config.ItemDigest).
func DigestFunc(ref, app string, seed uint64) func(item int) Digest {
	return func(item int) Digest { return DigestItem(ref, app, seed, item) }
}

// PairKey builds the key for pair (i, j) under the given digest
// function.
func PairKey(digest func(int) Digest, i, j int) Key {
	return Key{A: digest(i), B: digest(j)}
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	// Entries is the number of distinct keys resident (index size).
	Entries int `json:"entries"`
	// Segments is the number of log segments (sealed + active).
	Segments int `json:"segments"`
	// LogEntries counts entries across all segments, including
	// duplicates superseded in the index but not yet compacted away.
	LogEntries int `json:"log_entries"`
	// Bytes is the modeled log size (values + per-entry overhead).
	Bytes int64 `json:"bytes"`
	// Puts counts accepted appends; DupPuts appends ignored because the
	// key was already resident.
	Puts    uint64 `json:"puts"`
	DupPuts uint64 `json:"dup_puts"`
	// ServedPairs and MissedPairs aggregate runtime outcomes reported
	// back by the scheduler: pairs skipped because they were resident,
	// and planned-resident pairs that had to be recomputed.
	ServedPairs uint64 `json:"served_pairs"`
	MissedPairs uint64 `json:"missed_pairs"`
	// ReadBytes and WriteBytes total the charged store I/O.
	ReadBytes  int64 `json:"read_bytes"`
	WriteBytes int64 `json:"write_bytes"`
	// Compactions counts Compact calls; CompactedAway the duplicate
	// entries they dropped.
	Compactions   uint64 `json:"compactions"`
	CompactedAway uint64 `json:"compacted_away"`
}

// segment is one run of the append-only log. Sealed segments are
// immutable; only the last segment accepts appends.
type segment struct {
	ID      int     `json:"id"`
	Sealed  bool    `json:"sealed"`
	Entries []Entry `json:"entries"`
	Bytes   int64   `json:"bytes"`
}

// idxEntry is one index slot: the entry plus its insertion sequence
// number, which is what snapshots filter on.
type idxEntry struct {
	e   Entry
	seq uint64
}

// Store is the mutable, lock-protected store. Runs never touch it
// directly: they read an immutable Snapshot and write through a Batch.
type Store struct {
	mu       sync.Mutex
	segments []*segment
	index    map[Key]idxEntry
	// seq counts successful appends; because the store is append-only
	// and first-write-wins (no deletes, no overwrites), the first seq
	// entries are exactly the state after the seq-th append — which is
	// what makes an O(1) watermark Snapshot sound.
	seq   uint64
	stats Stats
}

// New returns an empty store with one open segment.
func New() *Store {
	s := &Store{index: make(map[Key]idxEntry)}
	s.segments = []*segment{{ID: 0}}
	return s
}

// entryBytes is the modeled log footprint of one entry.
func entryBytes(e Entry) int64 {
	return EntryOverheadBytes + int64(len(e.Value))
}

// active returns the open segment, under s.mu.
func (s *Store) active() *segment {
	return s.segments[len(s.segments)-1]
}

// Put appends one entry. The store is append-only: a key that is
// already resident keeps its first value and Put reports false.
func (s *Store) Put(e Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(e)
}

func (s *Store) putLocked(e Entry) bool {
	if _, dup := s.index[e.Key]; dup {
		s.stats.DupPuts++
		return false
	}
	seg := s.active()
	seg.Entries = append(seg.Entries, e)
	seg.Bytes += entryBytes(e)
	s.seq++
	s.index[e.Key] = idxEntry{e: e, seq: s.seq}
	s.stats.Puts++
	return true
}

// Merge appends every entry of the batch, in batch order, returning how
// many were new. A nil batch is a no-op.
func (s *Store) Merge(b *Batch) int {
	if b == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, e := range b.entries {
		if s.putLocked(e) {
			added++
		}
	}
	return added
}

// Get returns the entry for k, if resident.
func (s *Store) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ie, ok := s.index[k]
	return ie.e, ok
}

// Has reports whether k is resident.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	return ok
}

// Len returns the number of distinct resident keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Seal closes the active segment and opens a fresh one, so subsequent
// appends land in a new log run. Sealing an empty segment is a no-op.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked()
}

func (s *Store) sealLocked() {
	seg := s.active()
	if len(seg.Entries) == 0 {
		return
	}
	seg.Sealed = true
	s.segments = append(s.segments, &segment{ID: seg.ID + 1})
}

// Compact merges the whole log into a single segment, dropping
// duplicate appends (first write wins, matching the index), and returns
// the number of entries dropped. Entry order is preserved.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	merged := &segment{ID: s.active().ID + 1}
	seen := make(map[Key]struct{}, len(s.index))
	dropped := 0
	for _, seg := range s.segments {
		for _, e := range seg.Entries {
			if _, dup := seen[e.Key]; dup {
				dropped++
				continue
			}
			seen[e.Key] = struct{}{}
			merged.Entries = append(merged.Entries, e)
			merged.Bytes += entryBytes(e)
		}
	}
	s.segments = []*segment{merged}
	s.stats.Compactions++
	s.stats.CompactedAway += uint64(dropped)
	return dropped
}

// RecordServe folds one run's store outcome into the stats: pairs
// served from the store, planned-resident pairs that were absent and
// recomputed, and the charged read/write bytes.
func (s *Store) RecordServe(served, missed uint64, readBytes, writeBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ServedPairs += served
	s.stats.MissedPairs += missed
	s.stats.ReadBytes += readBytes
	s.stats.WriteBytes += writeBytes
}

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Segments = len(s.segments)
	for _, seg := range s.segments {
		st.LogEntries += len(seg.Entries)
		st.Bytes += seg.Bytes
	}
	return st
}

// Snapshot returns an immutable view of the current index. Runs consult
// the snapshot only; concurrent appends to the store never change what
// a snapshot reports. Taking a snapshot is O(1): because the store is
// append-only with first-write-wins semantics, recording the current
// append sequence number fully determines the visible entry set —
// entries are never mutated or removed, so filtering lookups by that
// watermark reproduces the exact state at snapshot time.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Snapshot{s: s, watermark: s.seq}
}

// Snapshot is an immutable point-in-time view of a store's index. The
// zero value is an empty snapshot.
type Snapshot struct {
	s         *Store
	watermark uint64
}

// Has reports whether k was resident when the snapshot was taken.
func (sn *Snapshot) Has(k Key) bool {
	if sn == nil || sn.s == nil {
		return false
	}
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()
	ie, ok := sn.s.index[k]
	return ok && ie.seq <= sn.watermark
}

// HasMany reports, for each key, whether it was resident at snapshot
// time, writing into out (which must be at least len(keys) long). It
// takes the store lock once for the whole batch — delta planners probe
// O(base²) keys at job start, where per-key locking would dominate.
func (sn *Snapshot) HasMany(keys []Key, out []bool) {
	if sn == nil || sn.s == nil {
		for i := range keys {
			out[i] = false
		}
		return
	}
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()
	for i, k := range keys {
		ie, ok := sn.s.index[k]
		out[i] = ok && ie.seq <= sn.watermark
	}
}

// Get returns the entry for k, if resident at snapshot time.
func (sn *Snapshot) Get(k Key) (Entry, bool) {
	if sn == nil || sn.s == nil {
		return Entry{}, false
	}
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()
	ie, ok := sn.s.index[k]
	if !ok || ie.seq > sn.watermark {
		return Entry{}, false
	}
	return ie.e, true
}

// Len returns the number of resident keys at snapshot time: exactly
// the watermark, since every successful append adds one entry and
// entries are never removed.
func (sn *Snapshot) Len() int {
	if sn == nil {
		return 0
	}
	return int(sn.watermark)
}

// Batch collects the entries one run emits, in completion order. It is
// single-writer (the run's event loop) and merged into a Store once the
// run's results are final.
type Batch struct {
	entries []Entry
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Add appends one entry to the batch.
func (b *Batch) Add(e Entry) { b.entries = append(b.entries, e) }

// Len returns the number of collected entries.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// Bytes returns the modeled log footprint of the batch.
func (b *Batch) Bytes() int64 {
	if b == nil {
		return 0
	}
	var total int64
	for _, e := range b.entries {
		total += entryBytes(e)
	}
	return total
}

// snapshotDoc is the persisted store form: the full segment log plus
// the cumulative counters, so a reloaded store reports continuous
// stats.
type snapshotDoc struct {
	Format   int       `json:"format"`
	Segments []segment `json:"segments"`
	Stats    Stats     `json:"stats"`
}

const snapshotFormat = 1

// Save writes the store (segment log and counters) to path as JSON,
// atomically via a temp file in the same directory.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	doc := snapshotDoc{Format: snapshotFormat, Stats: s.stats}
	for _, seg := range s.segments {
		doc.Segments = append(doc.Segments, *seg)
	}
	s.mu.Unlock()
	// Compact marshaling keeps embedded raw values byte-identical across
	// a Save/Load round trip (indentation would reformat them).
	buf, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a store saved with Save and rebuilds the index. The log is
// replayed in segment order, first write per key winning, exactly as
// the live store built it.
func Load(path string) (*Store, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc snapshotDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("pairstore: %s: %w", path, err)
	}
	if doc.Format != snapshotFormat {
		return nil, fmt.Errorf("pairstore: %s: unknown format %d", path, doc.Format)
	}
	s := &Store{index: make(map[Key]idxEntry)}
	sort.SliceStable(doc.Segments, func(i, j int) bool {
		return doc.Segments[i].ID < doc.Segments[j].ID
	})
	for i := range doc.Segments {
		seg := doc.Segments[i]
		s.segments = append(s.segments, &seg)
		for _, e := range seg.Entries {
			if _, dup := s.index[e.Key]; !dup {
				s.seq++
				s.index[e.Key] = idxEntry{e: e, seq: s.seq}
			}
		}
	}
	if len(s.segments) == 0 {
		s.segments = []*segment{{ID: 0}}
	} else if last := s.active(); last.Sealed {
		s.segments = append(s.segments, &segment{ID: last.ID + 1})
	}
	s.stats = doc.Stats
	// Derived fields are recomputed by Stats(); persisted values of the
	// derived fields are ignored.
	s.stats.Entries = 0
	s.stats.Segments = 0
	s.stats.LogEntries = 0
	s.stats.Bytes = 0
	return s, nil
}

// LoadOrNew loads the store at path, or returns a fresh one (loaded =
// false) when no file exists there yet — the start-of-session half of
// the CLI persistence lifecycle.
func LoadOrNew(path string) (s *Store, loaded bool, err error) {
	s, err = Load(path)
	if os.IsNotExist(err) {
		return New(), false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return s, true, nil
}

// SealAndSave seals the active segment (so the next session appends
// into a fresh log run) and persists the store — the end-of-session
// half of the CLI persistence lifecycle.
func (s *Store) SealAndSave(path string) error {
	s.Seal()
	return s.Save(path)
}

// DeltaPairs returns how many pairs a delta job over n items with base
// resident items must compute: the new-vs-all set n·(n-1)/2 − b·(b-1)/2
// (every pair touching at least one appended item).
func DeltaPairs(n, base int) int64 {
	if base > n {
		base = n
	}
	if base < 0 {
		base = 0
	}
	t := func(m int) int64 { return int64(m) * int64(m-1) / 2 }
	return t(n) - t(base)
}
