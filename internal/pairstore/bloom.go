package pairstore

// A blocked-free, classic bloom filter over pair keys. Each sealed
// segment carries one so point probes (Put dup checks, planner
// verification of planned-resident pairs) skip segments that cannot
// contain the key without decoding any block. Sized at ~10 bits per
// key with 7 probes, the false-positive rate is ~1% — a false positive
// costs one block decode, never a wrong answer.

const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

type bloom struct {
	bits []uint64
}

// newBloom sizes a filter for n keys. n == 0 yields an empty filter
// that reports every key absent.
func newBloom(n int) bloom {
	if n <= 0 {
		return bloom{}
	}
	words := (n*bloomBitsPerKey + 63) / 64
	return bloom{bits: make([]uint64, words)}
}

// bloomHash derives the two independent 32-bit hashes double hashing
// composes. The pair key's digests are already avalanched (splitmix64
// finalizer in DigestItem), so cheap mixing suffices.
func bloomHash(k Key) (uint32, uint32) {
	x := uint64(k.A) ^ (uint64(k.B)<<32 | uint64(k.B)>>32)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x), uint32(x >> 32)
}

func (f *bloom) add(k Key) {
	if len(f.bits) == 0 {
		return
	}
	h1, h2 := bloomHash(k)
	m := uint32(len(f.bits) * 64)
	for i := uint32(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// test reports whether k may be present (false = definitely absent).
func (f *bloom) test(k Key) bool {
	if len(f.bits) == 0 {
		return false
	}
	h1, h2 := bloomHash(k)
	m := uint32(len(f.bits) * 64)
	for i := uint32(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// sizeBytes is the filter's resident footprint.
func (f *bloom) sizeBytes() int64 { return int64(len(f.bits) * 8) }
