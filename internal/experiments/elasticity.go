package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/apps/forensics"
	"rocket/internal/fault"
	"rocket/internal/fleet"
	"rocket/internal/report"
	"rocket/internal/sched"
	"rocket/internal/sim"
)

// elasticNodes is the shared-cluster capacity of the autoscaler bench:
// single-node jobs arrive in bursts, so a fixed fleet of this size idles
// between bursts while an elastic one pays per use.
const elasticNodes = 6

// Elasticity is the dynamic-membership experiment, in two halves.
//
// The first half is the determinism witness: a fleet with seeded churn —
// wave arrivals with cold-start jitter plus spot preemptions that drain
// work to a successor — runs at engine widths 1, 2, 4 and 8, and every
// width must reproduce the byte-identical summary. Membership never
// remaps the node-to-shard assignment (the shard map is a pure function
// of the slot space), so churn composes with sharding without a seam;
// this experiment fails hard if that argument ever breaks.
//
// The second half is the autoscaler bench: the same bursty job queue runs
// on a fixed max-size fleet, a warm elastic pool (zero provision delay),
// and a cold elastic pool (10 ms provisioning). The warm pool must match
// the fixed fleet's p99 wait exactly — same-instant capacity means
// provably identical job starts — while billing strictly fewer
// node-seconds; both properties are asserted, not just printed.
func Elasticity(o Options) (string, error) {
	o = o.normalized()
	var b strings.Builder
	churn, err := elasticChurnSweep(o)
	if err != nil {
		return "", err
	}
	b.WriteString(churn)
	b.WriteByte('\n')
	bench, err := autoscalerBench(o)
	if err != nil {
		return "", err
	}
	b.WriteString(bench)
	return b.String(), nil
}

// elasticChurnConfig sizes the churn fleet like shardscale does: off
// Options.Scale, floored so width 8 still has several nodes per shard.
func elasticChurnConfig(o Options) fleet.Config {
	nodes := 10240 / o.Scale
	if nodes < 64 {
		nodes = 64
	}
	cfg := fleet.DefaultConfig(nodes)
	cfg.Seed = o.Seed
	cfg.Duration = sim.Millis(10)
	cfg.Elastic = &fault.Elasticity{
		InitialNodes:    nodes / 4,
		Arrival:         fault.ArrivalWave,
		Waves:           4,
		ColdStartJitter: sim.Micros(200),
		PreemptFraction: 0.2,
		PreemptAfter:    sim.Millis(1),
	}
	return cfg
}

func elasticChurnSweep(o Options) (string, error) {
	cfg := elasticChurnConfig(o)
	results := make([]fleet.Result, len(shardWidths))
	// Sequential on purpose, like shardscale: each run already uses up to
	// `width` OS threads.
	for i, k := range shardWidths {
		c := cfg
		c.Shards = k
		r, err := fleet.Run(c)
		if err != nil {
			return "", fmt.Errorf("elasticity shards=%d: %w", k, err)
		}
		results[i] = r
	}
	t := report.NewTable(
		fmt.Sprintf("Elastic fleet: %d slots, %d initial, wave joins + %.0f%% preemptions, %v",
			cfg.Nodes, cfg.Elastic.InitialNodes, 100*cfg.Elastic.PreemptFraction, cfg.Duration),
		"shards", "joins", "preempts", "drained", "events", "msgs", "work", "state hash")
	for i, r := range results {
		t.AddRow(
			shardWidths[i],
			r.Joins,
			r.Preempts,
			r.Drained,
			r.Events,
			r.Messages,
			r.WorkDone,
			fmt.Sprintf("%016x", r.StateHash),
		)
		if r.String() != results[0].String() {
			return "", fmt.Errorf("elasticity: width %d diverged from width 1:\n  %s\n  %s",
				shardWidths[i], r, results[0])
		}
	}
	out := t.String()
	out += fmt.Sprintf("\ninvariance: all %d widths byte-identical under churn (%s)\n",
		len(shardWidths), results[0])
	return out, nil
}

// elasticBurstJobs builds the autoscaler workload: bursts of single-node
// forensics jobs separated by idle gaps much longer than a job's runtime.
func elasticBurstJobs(o Options, bursts, width int, gap sim.Time) []sched.Job {
	n := 80 / o.Scale
	if n < 8 {
		n = 8
	}
	jobs := make([]sched.Job, 0, bursts*width)
	for i := 0; i < bursts; i++ {
		for j := 0; j < width; j++ {
			k := i*width + j
			jobs = append(jobs, sched.Job{
				ID:      fmt.Sprintf("burst%d", k),
				App:     forensics.New(forensics.Params{N: n, Seed: o.Seed + uint64(k)}),
				Nodes:   1,
				Arrival: sim.Time(i) * gap,
			})
		}
	}
	return jobs
}

func autoscalerBench(o Options) (string, error) {
	jobs := elasticBurstJobs(o, 3, 2*elasticNodes, sim.Seconds(60))
	runWith := func(a *sched.Autoscale) (*sched.Metrics, error) {
		return sched.Run(sched.Config{
			Jobs:    jobs,
			Nodes:   elasticNodes,
			Seed:    o.Seed,
			Elastic: a,
		})
	}
	fixed, err := runWith(nil)
	if err != nil {
		return "", fmt.Errorf("elasticity fixed fleet: %w", err)
	}
	warm, err := runWith(&sched.Autoscale{MinNodes: 1, IdleTimeout: sim.Seconds(10)})
	if err != nil {
		return "", fmt.Errorf("elasticity warm pool: %w", err)
	}
	cold, err := runWith(&sched.Autoscale{
		BootNodes:      1,
		MinNodes:       1,
		IdleTimeout:    sim.Seconds(10),
		ProvisionDelay: sim.Millis(10),
	})
	if err != nil {
		return "", fmt.Errorf("elasticity cold pool: %w", err)
	}

	t := report.NewTable(
		fmt.Sprintf("Autoscaler: %d bursty jobs on %d-node capacity", len(jobs), elasticNodes),
		"fleet", "node-seconds", "p99 wait", "mean wait", "peak", "ups", "downs", "makespan")
	row := func(name string, m *sched.Metrics) {
		peak := m.PeakNodes
		if !m.Elastic {
			peak = m.TotalNodes
		}
		t.AddRow(name, fmt.Sprintf("%.2f", m.NodeSeconds), m.P99Wait.String(),
			m.MeanWait.String(), peak, m.ScaleUps, m.ScaleDowns, m.Makespan.String())
	}
	row("fixed", fixed)
	row("warm", warm)
	row("cold", cold)

	// The headline claims are load-bearing: fail the experiment rather
	// than render numbers that no longer support them.
	if warm.P99Wait != fixed.P99Wait {
		return "", fmt.Errorf("elasticity: warm pool p99 wait %v != fixed fleet %v (same-instant capacity must not delay starts)",
			warm.P99Wait, fixed.P99Wait)
	}
	if warm.NodeSeconds >= fixed.NodeSeconds {
		return "", fmt.Errorf("elasticity: warm pool bill %.2f node-seconds not below fixed fleet %.2f",
			warm.NodeSeconds, fixed.NodeSeconds)
	}

	out := t.String()
	out += fmt.Sprintf("\nwarm pool: %.1f%% of the fixed-fleet bill at identical p99 wait (%v); cold pool trades %v of p99 for provisioning\n",
		100*warm.NodeSeconds/fixed.NodeSeconds, fixed.P99Wait, cold.P99Wait-fixed.P99Wait)
	return out, nil
}
