package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/core"
	"rocket/internal/report"
)

// Fig11 reproduces Fig. 11: the outcome distribution of distributed-cache
// requests with h = 3 on 16 nodes. Expected shape: the vast majority of
// requests either hit at the first hop (75-88% in the paper) or miss
// (11-19%); later hops contribute little — the justification for running
// everything else at h = 1.
func Fig11(o Options) (string, error) {
	o = o.normalized()
	var b strings.Builder
	const hops = 3
	t := report.NewTable("Fig 11: distributed cache request outcomes, h=3, 16 nodes",
		"app", "requests", "hit@1", "hit@2", "hit@3", "miss")
	for _, s := range AllSetups(o) {
		m, err := s.runDAS5(16, func(cfg *core.Config) {
			cfg.DistCache = true
			cfg.Hops = hops
		})
		if err != nil {
			return "", fmt.Errorf("%s: %w", s.Name, err)
		}
		total := float64(m.DHT.Requests)
		if total == 0 {
			total = 1
		}
		pct := func(v uint64) string { return fmt.Sprintf("%.1f%%", 100*float64(v)/total) }
		t.AddRow(s.Name, m.DHT.Requests,
			pct(m.DHT.HitAtHop[0]), pct(m.DHT.HitAtHop[1]), pct(m.DHT.HitAtHop[2]),
			pct(m.DHT.Misses))
	}
	b.WriteString(t.String())
	return b.String(), nil
}
