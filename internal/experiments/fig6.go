package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rocket/internal/core"
	"rocket/internal/sim"
	"rocket/internal/trace"
)

// Fig6 reproduces Fig. 6: a section of a profiling trace of the forensics
// application visualized per resource ("rows represent threads and boxes
// represent executed tasks"). It runs a small slice of the workload with
// detailed tracing enabled and prints the timeline, plus the asynchrony
// evidence the paper draws from the figure: while the GPU executes
// comparisons, parsing, I/O, and transfers proceed concurrently on their
// own threads.
func Fig6(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(Options{Scale: 100, Seed: o.Seed})
	m, err := s.runDAS5(1, func(cfg *core.Config) {
		cfg.DetailedTrace = true
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## Fig 6: task trace, forensics, 1 node (n=%d, %d tasks recorded)\n",
		s.App.NumItems(), len(m.Tracer.Tasks()))
	fmt.Fprintf(&b, "busy per thread class:\n%s\n", m.Tracer.Summary())

	// Quantify overlap: how much of the GPU-busy interval also has CPU or
	// I/O activity in flight — the "GPU remains fully utilized while slow
	// I/O and CPU tasks run in the background" observation.
	overlap := overlappedTime(m.Tracer.Tasks(), trace.ClassGPU, trace.ClassCPU)
	fmt.Fprintf(&b, "GPU-busy time with CPU work concurrently in flight: %v\n\n", overlap)

	if err := m.Tracer.WriteTimeline(&b, 80); err != nil {
		return "", err
	}
	return b.String(), nil
}

// classEdge is a start (+1) or end (-1) of a task of one class.
type classEdge struct {
	at    sim.Time
	isA   bool
	delta int
}

// overlappedTime returns the total time during which at least one task of
// class a and one of class b are simultaneously active.
func overlappedTime(tasks []trace.Task, a, b trace.Class) sim.Time {
	var edges []classEdge
	for _, t := range tasks {
		if t.Class != a && t.Class != b {
			continue
		}
		edges = append(edges,
			classEdge{t.Start, t.Class == a, 1},
			classEdge{t.End, t.Class == a, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // process ends before starts
	})
	var actA, actB int
	var last, acc sim.Time
	for _, e := range edges {
		if actA > 0 && actB > 0 {
			acc += e.at - last
		}
		last = e.at
		if e.isA {
			actA += e.delta
		} else {
			actB += e.delta
		}
	}
	return acc
}
