package experiments

import (
	"fmt"
	"slices"
	"strings"

	"rocket/internal/core"
	"rocket/internal/sim"
	"rocket/internal/trace"
)

// Fig6 reproduces Fig. 6: a section of a profiling trace of the forensics
// application visualized per resource ("rows represent threads and boxes
// represent executed tasks"). It runs a small slice of the workload with
// detailed tracing enabled and prints the timeline, plus the asynchrony
// evidence the paper draws from the figure: while the GPU executes
// comparisons, parsing, I/O, and transfers proceed concurrently on their
// own threads.
func Fig6(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(Options{Scale: 100, Seed: o.Seed, Trace: o.Trace})
	m, err := s.runDAS5(1, func(cfg *core.Config) {
		cfg.DetailedTrace = true
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## Fig 6: task trace, forensics, 1 node (n=%d, %d tasks recorded)\n",
		s.App.NumItems(), len(m.Tracer.Tasks()))
	fmt.Fprintf(&b, "busy per thread class:\n%s\n", m.Tracer.Summary())

	// Quantify overlap: how much of the GPU-busy interval also has CPU or
	// I/O activity in flight — the "GPU remains fully utilized while slow
	// I/O and CPU tasks run in the background" observation.
	overlap := overlappedTime(m.Tracer.Tasks(), trace.ClassGPU, trace.ClassCPU)
	fmt.Fprintf(&b, "GPU-busy time with CPU work concurrently in flight: %v\n\n", overlap)

	if err := m.Tracer.WriteTimeline(&b, 80); err != nil {
		return "", err
	}
	return b.String(), nil
}

// overlappedTime returns the total time during which at least one task of
// class a and one of class b are simultaneously active. Each start/end
// edge is packed into one uint64 — time in the high bits, then a
// start/end bit (ends sort first, matching half-open intervals), then the
// class bit — so the sweep sorts machine words instead of structs.
func overlappedTime(tasks []trace.Task, a, b trace.Class) sim.Time {
	const (
		classBit = 1 << 0 // class a (vs class b)
		startBit = 1 << 1 // interval start (vs end)
	)
	pack := func(at sim.Time, bits uint64) uint64 { return uint64(at)<<2 | bits }
	edges := make([]uint64, 0, 2*len(tasks))
	for _, t := range tasks {
		if t.Class != a && t.Class != b {
			continue
		}
		var cls uint64
		if t.Class == a {
			cls = classBit
		}
		edges = append(edges,
			pack(t.Start, startBit|cls),
			pack(t.End, cls))
	}
	slices.Sort(edges)
	var actA, actB int
	var last, acc sim.Time
	for _, e := range edges {
		at := sim.Time(e >> 2)
		if actA > 0 && actB > 0 {
			acc += at - last
		}
		last = at
		delta := -1
		if e&startBit != 0 {
			delta = 1
		}
		if e&classBit != 0 {
			actA += delta
		} else {
			actB += delta
		}
	}
	return acc
}
