// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment builds the appropriate scaled workload
// and platform, executes the Rocket runtime on the simulated cluster, and
// renders the same rows or series the paper reports. The benchmark harness
// (bench_test.go) and the rocketbench CLI both call into this package.
//
// Workload scale: the forensics and bioinformatics data sets are divided
// by Options.Scale (default 10). Cache capacities are divided alongside,
// preserving every capacity ratio and therefore the data-reuse behaviour
// R; per-item costs (parse and pre-process durations, file sizes) are
// also divided, preserving the balance between the quadratic comparison
// work (which shrinks by scale^2 through the pair count) and the linear
// per-item work (n/scale items, each 1/scale as expensive) — so modeled
// efficiency, thread-class ratios, and I/O rates all match paper scale.
// The microscopy data set is small (n = 256) and always runs at paper
// scale. EXPERIMENTS.md records the scale used for the reported numbers.
package experiments

import (
	"fmt"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/gpu"
	"rocket/internal/model"
	"rocket/internal/obs"
	"rocket/internal/sim"

	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
	"rocket/internal/apps/phylo"
)

// Options control workload scaling and seeding for all experiments.
type Options struct {
	// Scale divides the forensics/bioinformatics data-set sizes and cache
	// capacities. 1 reproduces paper scale (slow); 0 defaults to 10.
	Scale int
	// Seed drives all randomness.
	Seed uint64
	// Shards is the concurrency width experiments exploit: sweep
	// experiments run their independent points (each its own simulation
	// Env) on a pool of Shards workers, and the fleet-based shardscale
	// experiment sizes nothing by it — its internal width sweep is fixed.
	// Shards cannot affect any reported number; outputs are assembled in
	// point order, so every experiment's rendering is byte-identical at
	// every width. 0 or 1 runs sequentially.
	Shards int
	// Trace attaches a flight recorder to every core run the experiment
	// performs (rocketbench -trace). Recording must not change any
	// reported number: CI compares each experiment's output sha256 with
	// and without it, and benchgate watches the ns/op overhead.
	Trace bool
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 10
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// Setup is one application prepared for execution: the cost-model app,
// the paper's cache capacities (scaled), and the model constants.
type Setup struct {
	Name  string
	App   core.Application
	Costs model.Costs
	// DevSlots and HostSlots are per-level capacities scaled from
	// Table 1 (291/1050 forensics, 81/280 bioinformatics, 256/256
	// microscopy).
	DevSlots  int
	HostSlots int
	Seed      uint64
	// Trace attaches a fresh flight recorder to each run (Options.Trace):
	// the instrumentation overhead is real, the recording is discarded.
	Trace bool
}

type meanCoster interface {
	MeanCosts() (parse, pre, cmp, post sim.Time, fileBytes float64)
}

func costsOf(a meanCoster) model.Costs {
	parse, pre, cmp, post, fb := a.MeanCosts()
	return model.Costs{Parse: parse, Preprocess: pre, Compare: cmp, Post: post, FileBytes: fb}
}

func scaleSlots(paper, scale int) int {
	s := paper / scale
	if s < 4 {
		s = 4
	}
	return s
}

// scaledApp divides per-item costs (parse and pre-process durations, file
// size, and the item/slot size — and with it PCIe and distributed-cache
// transfer times) by Div while leaving per-pair costs untouched; see the
// package comment for why this preserves the paper-scale balance.
type scaledApp struct {
	core.Application
	Div int64
}

// ItemSize implements core.Application.
func (s scaledApp) ItemSize() int64 {
	size := s.Application.ItemSize() / s.Div
	if size < 1 {
		size = 1
	}
	return size
}

// ParseTime implements core.Application.
func (s scaledApp) ParseTime(item int) sim.Time {
	return s.Application.ParseTime(item) / sim.Time(s.Div)
}

// PreprocessTime implements core.Application.
func (s scaledApp) PreprocessTime(item int) sim.Time {
	return s.Application.PreprocessTime(item) / sim.Time(s.Div)
}

// FileSize implements core.Application.
func (s scaledApp) FileSize(item int) int64 {
	size := s.Application.FileSize(item) / s.Div
	if size < 1 {
		size = 1
	}
	return size
}

// scaleCosts divides the linear-work model constants to match scaledApp.
func scaleCosts(c model.Costs, div int64) model.Costs {
	c.Parse /= sim.Time(div)
	c.Preprocess /= sim.Time(div)
	c.FileBytes /= float64(div)
	return c
}

// ForensicsSetup prepares the digital-forensics workload.
func ForensicsSetup(o Options) Setup {
	o = o.normalized()
	app := forensics.New(forensics.Params{N: forensics.DefaultN / o.Scale, Seed: o.Seed})
	return Setup{
		Name:      app.Name(),
		App:       scaledApp{Application: app, Div: int64(o.Scale)},
		Costs:     scaleCosts(costsOf(app), int64(o.Scale)),
		DevSlots:  scaleSlots(291, o.Scale),
		HostSlots: scaleSlots(1050, o.Scale),
		Seed:      o.Seed,
		Trace:     o.Trace,
	}
}

// PhyloSetup prepares the bioinformatics workload (DAS-5 data set).
func PhyloSetup(o Options) Setup {
	o = o.normalized()
	app := phylo.New(phylo.Params{N: phylo.DefaultN / o.Scale, Seed: o.Seed})
	return Setup{
		Name:      app.Name(),
		App:       scaledApp{Application: app, Div: int64(o.Scale)},
		Costs:     scaleCosts(costsOf(app), int64(o.Scale)),
		DevSlots:  scaleSlots(81, o.Scale),
		HostSlots: scaleSlots(280, o.Scale),
		Seed:      o.Seed,
		Trace:     o.Trace,
	}
}

// CartesiusPhyloSetup prepares the §6.6 UniProt workload (6818 proteomes)
// with the Cartesius per-node capacities (80 GiB host cache = 561 slots).
func CartesiusPhyloSetup(o Options) Setup {
	o = o.normalized()
	app := phylo.New(phylo.Params{N: phylo.CartesiusN / o.Scale, Seed: o.Seed})
	return Setup{
		Name:      app.Name() + "-cartesius",
		App:       scaledApp{Application: app, Div: int64(o.Scale)},
		Costs:     scaleCosts(costsOf(app), int64(o.Scale)),
		DevSlots:  scaleSlots(82, o.Scale),  // 11 GiB K40m / 145.8 MB
		HostSlots: scaleSlots(561, o.Scale), // 80 GiB / 145.8 MB
		Seed:      o.Seed,
		Trace:     o.Trace,
	}
}

// MicroscopySetup prepares the localization-microscopy workload. It always
// runs at paper scale: the data set is tiny and cache capacity is never
// the bottleneck (Table 1: 256 slots at both levels).
func MicroscopySetup(o Options) Setup {
	o = o.normalized()
	app := microscopy.New(microscopy.Params{N: microscopy.DefaultN, Seed: o.Seed})
	return Setup{
		Name:      app.Name(),
		App:       app,
		Costs:     costsOf(app),
		DevSlots:  256,
		HostSlots: 256,
		Seed:      o.Seed,
		Trace:     o.Trace,
	}
}

// AllSetups returns the three applications in paper order.
func AllSetups(o Options) []Setup {
	return []Setup{ForensicsSetup(o), PhyloSetup(o), MicroscopySetup(o)}
}

// SetupByName returns the named setup ("forensics", "bioinformatics",
// "microscopy", or "bioinformatics-cartesius").
func SetupByName(name string, o Options) (Setup, error) {
	for _, s := range AllSetups(o) {
		if s.Name == name {
			return s, nil
		}
	}
	if s := CartesiusPhyloSetup(o); s.Name == name {
		return s, nil
	}
	return Setup{}, fmt.Errorf("experiments: unknown application %q", name)
}

// das5 builds a homogeneous DAS-5 platform with one TitanX Maxwell per
// node (the §6.3/6.4 configuration).
func das5(nodes int) (*cluster.Cluster, error) {
	specs := make([]cluster.NodeSpec, nodes)
	for i := range specs {
		specs[i] = cluster.NodeSpec{
			Cores:          16,
			HostCacheBytes: 40 * gpu.GiB,
			GPUs:           []gpu.Model{gpu.TitanXMaxwell},
		}
	}
	return cluster.New(specs, cluster.DefaultConfig())
}

// cartesius builds the §6.6 platform: nodes with two K40m GPUs each.
func cartesius(nodes int) (*cluster.Cluster, error) {
	specs := make([]cluster.NodeSpec, nodes)
	for i := range specs {
		specs[i] = cluster.NodeSpec{
			Cores:          16,
			HostCacheBytes: 80 * gpu.GiB,
			GPUs:           []gpu.Model{gpu.K40m, gpu.K40m},
		}
	}
	return cluster.New(specs, cluster.DefaultConfig())
}

// clusterFromSpecs builds a platform with default fabric characteristics.
func clusterFromSpecs(specs []cluster.NodeSpec) (*cluster.Cluster, error) {
	return cluster.New(specs, cluster.DefaultConfig())
}

// heterogeneousNodes returns the §6.5 mixed platform specs (nodes I-IV).
func heterogeneousNodes() []cluster.NodeSpec {
	mk := func(models ...gpu.Model) cluster.NodeSpec {
		return cluster.NodeSpec{Cores: 16, HostCacheBytes: 40 * gpu.GiB, GPUs: models}
	}
	return []cluster.NodeSpec{
		mk(gpu.K20m),                       // node I
		mk(gpu.GTX980, gpu.TitanXPascal),   // node II
		mk(gpu.RTX2080Ti, gpu.RTX2080Ti),   // node III
		mk(gpu.GTXTitan, gpu.TitanXPascal), // node IV
	}
}

// run executes the setup on a platform with optional config tweaks.
func (s Setup) run(cl *cluster.Cluster, mutate func(*core.Config)) (*core.Metrics, error) {
	cfg := core.Config{
		App:         s.App,
		Cluster:     cl,
		DeviceSlots: s.DevSlots,
		HostSlots:   s.HostSlots,
		Seed:        s.Seed,
	}
	if s.Trace {
		// A fresh recorder per run: full instrumentation cost, nothing
		// shared across concurrent sweep points, recording discarded.
		cfg.Spans = obs.New(1, 0)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Run(cfg)
}

// runDAS5 executes the setup on an n-node DAS-5 platform.
func (s Setup) runDAS5(nodes int, mutate func(*core.Config)) (*core.Metrics, error) {
	cl, err := das5(nodes)
	if err != nil {
		return nil, err
	}
	return s.run(cl, mutate)
}

// Efficiency evaluates equation (5) for a run on a platform with the
// given total relative GPU speed.
func (s Setup) Efficiency(m *core.Metrics, totalSpeed float64) float64 {
	return model.Efficiency(s.Costs, s.App.NumItems(), totalSpeed, m.Runtime)
}
