package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/apps/forensics"
	"rocket/internal/apps/microscopy"
	"rocket/internal/apps/phylo"
	"rocket/internal/report"
	"rocket/internal/sched"
	"rocket/internal/sim"
)

// queueNodes is the shared-cluster size of the queue-scaling experiment:
// wide batch jobs take half of it, so narrow interactive jobs always have
// nodes they could run on if the policy lets them through.
const queueNodes = 8

// QueueMix builds the skewed two-tenant workload the scheduler evaluation
// uses, sized for a shared cluster of the given node count: tenant
// "batch" front-loads wide, long microscopy jobs (every 4th job, half
// the cluster each, arriving at t=0; microscopy comparisons cost ~564 ms
// each, so these run for tens of virtual seconds), while tenant
// "interactive" trickles in narrow, short forensics and bioinformatics
// jobs (1 node, one per millisecond, ~ms comparisons). Under FIFO the
// batch jobs at the head of the queue block the interactive ones even
// while half the cluster idles; SJF and fair-share let them through,
// which is exactly the difference the experiment measures.
func QueueMix(jobs, nodes int, o Options) []sched.Job {
	o = o.normalized()
	batchNodes := nodes / 2
	if batchNodes < 1 {
		batchNodes = 1
	}
	bigN := 240 / o.Scale
	if bigN < 12 {
		bigN = 12
	}
	smallN := 80 / o.Scale
	if smallN < 8 {
		smallN = 8
	}
	out := make([]sched.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		switch i % 4 {
		case 0:
			out = append(out, sched.Job{
				ID:     fmt.Sprintf("batch%d", i),
				Tenant: "batch",
				App:    microscopy.New(microscopy.Params{N: bigN, Seed: o.Seed + uint64(i)}),
				Nodes:  batchNodes,
			})
		case 1, 3:
			out = append(out, sched.Job{
				ID:      fmt.Sprintf("inter%d", i),
				Tenant:  "interactive",
				App:     forensics.New(forensics.Params{N: smallN, Seed: o.Seed + uint64(i)}),
				Nodes:   1,
				Arrival: sim.Millis(float64(i)),
			})
		default:
			out = append(out, sched.Job{
				ID:      fmt.Sprintf("inter%d", i),
				Tenant:  "interactive",
				App:     phylo.New(phylo.Params{N: smallN, Seed: o.Seed + uint64(i)}),
				Nodes:   1,
				Arrival: sim.Millis(float64(i)),
			})
		}
	}
	return out
}

// QueueScaling evaluates the rocketd scheduler: job count x policy over
// the skewed QueueMix workload on one shared cluster, reporting makespan,
// mean/max wait, utilization, and job throughput per cell. Expected
// shape: makespan is policy-insensitive (the same work runs either way),
// while mean wait drops sharply from FIFO to SJF/fair-share because
// narrow interactive jobs stop queueing behind wide batch jobs.
func QueueScaling(o Options) (string, error) {
	o = o.normalized()
	t := report.NewTable(
		fmt.Sprintf("queue-scaling: skewed job mix on %d shared nodes", queueNodes),
		"jobs", "policy", "makespan", "mean wait", "max wait", "util %", "jobs/hour")
	meanWait := make(map[string]sim.Time)
	for _, jobs := range []int{8, 16, 32} {
		for _, p := range sched.Policies() {
			m, err := sched.Run(sched.Config{
				Jobs:   QueueMix(jobs, queueNodes, o),
				Nodes:  queueNodes,
				Policy: p,
				Seed:   o.Seed,
			})
			if err != nil {
				return "", fmt.Errorf("queue-scaling %d/%s: %w", jobs, p, err)
			}
			meanWait[fmt.Sprintf("%d/%s", jobs, p)] = m.MeanWait
			t.AddRow(jobs, p.String(), m.Makespan.String(), m.MeanWait.String(),
				m.MaxWait.String(), 100*m.Utilization, m.JobsPerHour)
		}
	}
	var b strings.Builder
	b.WriteString(t.String())
	fifo, fair := meanWait["32/fifo"], meanWait["32/fair"]
	if fair > 0 {
		fmt.Fprintf(&b, "fair-share mean wait at 32 jobs: %v vs FIFO %v (%.1fx lower)\n",
			fair, fifo, float64(fifo)/float64(fair))
	}
	return b.String(), nil
}
