package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// Fig13 reproduces Fig. 13: average throughput (pairs per second) of each
// of the four heterogeneous nodes individually, their sum, and the
// combined 4-node run. Expected shape: per-node throughput ordered by GPU
// capability (node III fastest, node I slowest), and the combined run
// matching or exceeding the sum thanks to the distributed cache.
func Fig13(o Options) (string, error) {
	o = o.normalized()
	specs := heterogeneousNodes()
	names := []string{"node I (K20m)", "node II (GTX980+TitanXp)", "node III (2xRTX2080Ti)", "node IV (GTXTitan+TitanXp)"}
	var b strings.Builder
	for _, s := range AllSetups(o) {
		t := report.NewTable(
			fmt.Sprintf("Fig 13 (%s): heterogeneous throughput (pairs/second)", s.Name),
			"platform", "throughput", "runtime")
		var sum float64
		for i, spec := range specs {
			cl, err := cluster.New([]cluster.NodeSpec{spec}, cluster.DefaultConfig())
			if err != nil {
				return "", err
			}
			m, err := s.run(cl, nil)
			if err != nil {
				return "", fmt.Errorf("%s %s: %w", s.Name, names[i], err)
			}
			sum += m.Throughput()
			t.AddRow(names[i], m.Throughput(), m.Runtime.String())
		}
		t.AddRow("sum of nodes", sum, "")
		cl, err := cluster.New(specs, cluster.DefaultConfig())
		if err != nil {
			return "", err
		}
		m, err := s.run(cl, func(cfg *core.Config) { cfg.DistCache = true })
		if err != nil {
			return "", fmt.Errorf("%s combined: %w", s.Name, err)
		}
		t.AddRow("all (4 nodes, 7 GPUs)", m.Throughput(), m.Runtime.String())
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig14 reproduces Fig. 14: per-GPU processing throughput over time for
// the microscopy application on the heterogeneous platform. Expected
// shape: every GPU sustains a steady rate proportional to its capability,
// all GPUs stay busy until the end (work-stealing balance), and all
// finish at roughly the same time.
func Fig14(o Options) (string, error) {
	o = o.normalized()
	s := MicroscopySetup(o)
	cl, err := cluster.New(heterogeneousNodes(), cluster.DefaultConfig())
	if err != nil {
		return "", err
	}
	m, err := s.run(cl, func(cfg *core.Config) {
		cfg.DistCache = true
		cfg.ThroughputWindow = sim.Minute
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## Fig 14 (%s): per-GPU throughput over time (pairs/s, 1-minute buckets)\n", s.Name)
	fmt.Fprintf(&b, "run time: %v over %d GPUs\n", m.Runtime, len(m.DeviceIDs))
	ids := append([]string(nil), m.DeviceIDs...)
	sort.Strings(ids)
	for _, id := range ids {
		ts := m.DeviceThroughput[id]
		if ts == nil {
			continue
		}
		rates := ts.Rate()
		var mean float64
		for _, r := range rates {
			mean += r
		}
		if len(rates) > 0 {
			mean /= float64(len(rates))
		}
		fmt.Fprintf(&b, "%-14s mean %.2f pairs/s | ", id, mean)
		for _, r := range rates {
			b.WriteByte(sparkChar(r, rates))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// sparkChar maps a rate to a 4-level ASCII sparkline character relative to
// the series peak.
func sparkChar(v float64, series []float64) byte {
	var peak float64
	for _, r := range series {
		if r > peak {
			peak = r
		}
	}
	if peak == 0 {
		return '.'
	}
	levels := []byte{'.', '-', '=', '#'}
	i := int(v / peak * 3.999)
	if i < 0 {
		i = 0
	}
	if i > 3 {
		i = 3
	}
	return levels[i]
}
