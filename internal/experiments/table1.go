package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/pairs"
	"rocket/internal/report"
	"rocket/internal/sim"
	"rocket/internal/stats"
)

// Table1 reproduces Table 1: the characteristics of the three applications
// on a TitanX Maxwell node. Data-set rows are computed from the scaled
// workloads; timing rows are sample statistics of the calibrated cost
// models (mean ± standard deviation over the data set).
func Table1(o Options) (string, error) {
	// Table 1 only samples the cost models (no runtime execution), so it
	// always reports paper scale regardless of Options.Scale.
	setups := AllSetups(Options{Scale: 1, Seed: o.Seed})
	t := report.NewTable(
		"Table 1: application characteristics (paper scale, TitanX Maxwell)",
		"characteristic", setups[0].Name, setups[1].Name, setups[2].Name)

	row := func(name string, f func(s Setup) string) {
		vals := make([]interface{}, 0, 4)
		vals = append(vals, name)
		for _, s := range setups {
			vals = append(vals, f(s))
		}
		t.AddRow(vals...)
	}

	row("no. of input files (n)", func(s Setup) string {
		return fmt.Sprintf("%d", s.App.NumItems())
	})
	row("size of raw data on disk", func(s Setup) string {
		var total int64
		for i := 0; i < s.App.NumItems(); i++ {
			total += s.App.FileSize(i)
		}
		return bytesString(total)
	})
	row("size of preprocessed data in memory", func(s Setup) string {
		return bytesString(int64(s.App.NumItems()) * s.App.ItemSize())
	})
	row("no. of pairs", func(s Setup) string {
		return fmt.Sprintf("%d", pairs.TotalPairs(s.App.NumItems()))
	})
	row("total data pair-wise processed", func(s Setup) string {
		return bytesString(2 * pairs.TotalPairs(s.App.NumItems()) * s.App.ItemSize())
	})
	row("cache slot size", func(s Setup) string {
		return bytesString(s.App.ItemSize())
	})
	row("no. device cache slots", func(s Setup) string {
		return fmt.Sprintf("%d", s.DevSlots)
	})
	row("no. host cache slots", func(s Setup) string {
		return fmt.Sprintf("%d", s.HostSlots)
	})
	row("time parse (CPU)", func(s Setup) string {
		return timeStat(s, func(i int) sim.Time { return s.App.ParseTime(i) })
	})
	row("time pre-process (GPU)", func(s Setup) string {
		if s.Costs.Preprocess == 0 {
			return "N/A"
		}
		return timeStat(s, func(i int) sim.Time { return s.App.PreprocessTime(i) })
	})
	row("time comparison (GPU)", func(s Setup) string {
		var sum stats.Summary
		n := s.App.NumItems()
		samples := 0
		for i := 0; i < n && samples < 2000; i++ {
			for j := i + 1; j < n && samples < 2000; j++ {
				sum.Add(s.App.CompareTime(i, j).Millis())
				samples++
			}
		}
		return fmt.Sprintf("%.1f±%.2f ms", sum.Mean(), sum.Std())
	})
	row("time post-process (CPU)", func(s Setup) string { return "0 ms" })

	return t.String(), nil
}

func timeStat(s Setup, f func(int) sim.Time) string {
	var sum stats.Summary
	for i := 0; i < s.App.NumItems(); i++ {
		sum.Add(f(i).Millis())
	}
	return fmt.Sprintf("%.1f±%.2f ms", sum.Mean(), sum.Std())
}

func bytesString(b int64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.1f TB", float64(b)/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.1f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Fig7 reproduces Fig. 7: histograms of the comparison-kernel run times of
// the three applications, confirming forensics is regular while the other
// two are highly irregular.
func Fig7(o Options) (string, error) {
	// Histograms sample the cost models directly; paper scale is cheap.
	var b strings.Builder
	for _, s := range AllSetups(Options{Scale: 1, Seed: o.Seed}) {
		mean := s.Costs.Compare.Millis()
		h := stats.NewHistogram(0, 4*mean, 16, false)
		n := s.App.NumItems()
		samples := 0
		for i := 0; i < n && samples < 20000; i++ {
			for j := i + 1; j < n && samples < 20000; j++ {
				h.Add(s.App.CompareTime(i, j).Millis())
				samples++
			}
		}
		fmt.Fprintf(&b, "## Fig 7 (%s): comparison run time histogram (ms)\n", s.Name)
		b.WriteString(h.Render(40))
		b.WriteByte('\n')
	}
	return b.String(), nil
}
