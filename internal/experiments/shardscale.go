package experiments

import (
	"fmt"

	"rocket/internal/fault"
	"rocket/internal/fleet"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// shardWidths is the fixed internal sweep of the shardscale experiment.
// It is deliberately NOT derived from Options.Shards: the experiment's
// output must be byte-identical at every Options.Shards width, so the
// widths it measures are part of the experiment definition, like a node
// count in a scaling figure.
var shardWidths = []int{1, 2, 4, 8}

// ShardScale exercises the sharded event engine on the fleet workload: a
// heartbeat/gossip/work-stealing fleet is simulated at engine widths 1, 2,
// 4 and 8, with node crashes and restarts injected mid-run. Every width
// must reproduce the exact same simulation — the rendered table repeats
// the per-width state hash, and the experiment fails outright if any
// width diverges, making a determinism regression a hard error rather
// than a silent golden drift. Wall-clock throughput is intentionally
// absent here (it would break output determinism); rocketbench measures
// events/sec separately and records it in the bench report's shard
// trajectory.
func ShardScale(o Options) (string, error) {
	o = o.normalized()
	cfg := shardScaleConfig(o)
	results := make([]fleet.Result, len(shardWidths))
	// The widths run sequentially on purpose: each run already uses up to
	// `width` OS threads, and nesting them inside a forEach pool would
	// oversubscribe without changing any output.
	for i, k := range shardWidths {
		c := cfg
		c.Shards = k
		r, err := fleet.Run(c)
		if err != nil {
			return "", fmt.Errorf("shards=%d: %w", k, err)
		}
		results[i] = r
	}
	t := report.NewTable(
		fmt.Sprintf("Shard scaling: fleet of %d nodes, %v, faults on", cfg.Nodes, cfg.Duration),
		"shards", "windows", "events", "msgs", "dropped", "heartbeats", "rumors", "work", "state hash")
	for i, r := range results {
		t.AddRow(
			shardWidths[i],
			r.Windows,
			r.Events,
			r.Messages,
			r.Dropped,
			r.Heartbeats,
			r.Rumors,
			r.WorkDone,
			fmt.Sprintf("%016x", r.StateHash),
		)
		if results[i].String() != results[0].String() {
			return "", fmt.Errorf("shardscale: width %d diverged from width 1:\n  %s\n  %s",
				shardWidths[i], results[i], results[0])
		}
	}
	out := t.String()
	out += fmt.Sprintf("\ninvariance: all %d widths byte-identical (%s)\n",
		len(shardWidths), results[0])
	return out, nil
}

// shardScaleConfig sizes the fleet off Options.Scale the same way the
// paper workloads scale their data sets: 10240 nodes at paper scale 1,
// divided by Scale, floored at 64 so every width in the sweep still has
// multiple nodes per shard.
func shardScaleConfig(o Options) fleet.Config {
	nodes := 10240 / o.Scale
	if nodes < 64 {
		nodes = 64
	}
	cfg := fleet.DefaultConfig(nodes)
	cfg.Seed = o.Seed
	cfg.Duration = sim.Millis(20)
	cfg.Faults = shardScaleFaults(nodes)
	return cfg
}

// shardScaleFaults crashes ~2% of the fleet mid-run and restarts half of
// the victims, spread across the node range so every shard in the sweep
// owns at least one fault at width 8.
func shardScaleFaults(nodes int) *fault.Schedule {
	s := &fault.Schedule{}
	victims := nodes / 50
	if victims < 4 {
		victims = 4
	}
	for v := 0; v < victims; v++ {
		node := (v*nodes)/victims + nodes/(2*victims)
		at := sim.Millis(4) + sim.Micros(float64(137*v%1000))
		s.Crash(node, at)
		if v%2 == 0 {
			s.Restart(node, at+sim.Millis(8))
		}
	}
	return s
}
