package experiments

import (
	"fmt"

	"rocket/internal/core"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// Fig15 reproduces Fig. 15: the large-scale Cartesius experiment — the
// bioinformatics application on all UniProt reference bacteria proteomes
// (6818 files, scaled), from 1 node (2 GPUs) to 48 nodes (96 GPUs).
// Expected shapes: run time dropping from hours to minutes, super-linear
// speedup throughout (the paper reports R dropping 11.8x from 31.9 to 2.7
// between 1 and 48 nodes), and efficiency increasing with node count.
func Fig15(o Options) (string, error) {
	o = o.normalized()
	s := CartesiusPhyloSetup(o)
	nodeCounts := []int{1, 8, 16, 32, 48}
	metrics := make([]*core.Metrics, len(nodeCounts))
	speeds := make([]float64, len(nodeCounts))
	err := o.forEach(len(nodeCounts), func(i int) error {
		cl, err := cartesius(nodeCounts[i])
		if err != nil {
			return err
		}
		m, err := s.run(cl, func(cfg *core.Config) {
			cfg.DistCache = true
		})
		if err != nil {
			return fmt.Errorf("nodes=%d: %w", nodeCounts[i], err)
		}
		metrics[i] = m
		speeds[i] = cl.TotalSpeed()
		return nil
	})
	if err != nil {
		return "", err
	}
	t := report.NewTable(
		fmt.Sprintf("Fig 15: Cartesius scaling, %s (n=%d, 2 K40m GPUs/node)", s.Name, s.App.NumItems()),
		"nodes", "GPUs", "runtime", "speedup", "R", "efficiency")
	var base sim.Time
	for i, m := range metrics {
		nodes := nodeCounts[i]
		if nodes == nodeCounts[0] {
			base = m.Runtime
		}
		t.AddRow(
			nodes,
			2*nodes,
			m.Runtime.String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(m.Runtime)),
			m.R,
			fmt.Sprintf("%.1f%%", 100*s.Efficiency(m, speeds[i])),
		)
	}
	return t.String(), nil
}
