package experiments

import (
	"fmt"

	"rocket/internal/core"
	"rocket/internal/fault"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// resilienceNodes is the platform size of the resilience sweep.
const resilienceNodes = 8

// Resilience proves the paper's §4.2 robustness claim end to end under
// injected faults: work stealing plus the replicated multi-level cache
// keep the all-pairs computation running — and completing correctly —
// through node crashes, restarts, straggler GPUs, and degraded or
// partitioned links. The sweep runs the forensics workload on 8 DAS-5
// nodes with the distributed cache enabled, first failure-free (the
// baseline) and then under a ladder of deterministic fault schedules
// whose event times are fractions of the baseline runtime. Reported per
// scenario: completion-time inflation vs the baseline, the work recovered
// by steal-based crash recovery, and the fabric messages dropped and
// resolved as failures. Every scenario completes all pairs; inflation
// stays far below the lost capacity share because survivors re-steal the
// dead nodes' regions immediately.
func Resilience(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	mutate := func(cfg *core.Config) { cfg.DistCache = true }

	base, err := s.runDAS5(resilienceNodes, mutate)
	if err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	t0 := base.Runtime
	frac := func(f float64) sim.Time { return sim.Time(f * float64(t0)) }

	scenarios := []struct {
		name  string
		sched *fault.Schedule
	}{
		{"failure-free", nil},
		{"crash 1/8 @25%", new(fault.Schedule).
			Crash(7, frac(0.25))},
		{"crash 2/8 @20,45%", new(fault.Schedule).
			Crash(7, frac(0.20)).
			Crash(6, frac(0.45))},
		{"crash 4/8 @15-60%", new(fault.Schedule).
			Crash(7, frac(0.15)).
			Crash(6, frac(0.30)).
			Crash(5, frac(0.45)).
			Crash(4, frac(0.60))},
		{"crash 2/8, restart @60%", new(fault.Schedule).
			Crash(7, frac(0.20)).
			Crash(6, frac(0.35)).
			Restart(7, frac(0.60)).
			Restart(6, frac(0.60))},
		{"straggler gpu x4 @20-70%", new(fault.Schedule).
			SlowGPU(1, 0, frac(0.20), 4).
			RestoreGPU(1, 0, frac(0.70))},
		{"link 0-7 cut @20-60%", new(fault.Schedule).
			CutLink(0, 7, frac(0.20)).
			RestoreLink(0, 7, frac(0.60))},
		{"link 0-7 degraded x8 @20%", new(fault.Schedule).
			DegradeLink(0, 7, frac(0.20), 8, 8)},
	}

	t := report.NewTable(
		fmt.Sprintf("Resilience: forensics on %d nodes, fault sweep vs failure-free baseline", resilienceNodes),
		"scenario", "runtime", "inflation", "pairs", "recovered", "dropped", "remote", "failed", "R")
	for _, sc := range scenarios {
		m := base
		if sc.sched != nil {
			m, err = s.runDAS5(resilienceNodes, func(cfg *core.Config) {
				mutate(cfg)
				cfg.Faults = sc.sched
			})
			if err != nil {
				return "", fmt.Errorf("%s: %w", sc.name, err)
			}
		}
		t.AddRow(
			sc.name,
			m.Runtime.Seconds(),
			fmt.Sprintf("%.3fx", float64(m.Runtime)/float64(t0)),
			m.Pairs,
			m.RecoveredPairs,
			m.DroppedMessages,
			m.RemoteSteals,
			m.FailedSteals,
			m.R,
		)
	}
	return t.String(), nil
}
