package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/core"
	"rocket/internal/model"
	"rocket/internal/report"
	"rocket/internal/trace"
)

// Fig8 reproduces Fig. 8: per-thread-class busy time on one node (TitanX
// Maxwell) for each application, next to the overall run time and the
// modeled lower bound T_min. The expected shape: the GPU bar dominates and
// nearly equals the run time (asynchronous processing overlaps everything
// else), and efficiency is high (94.6% / 88.5% / 99.2% in the paper).
func Fig8(o Options) (string, error) {
	o = o.normalized()
	var b strings.Builder
	t := report.NewTable("Fig 8: processing time per thread class, 1 node (values in virtual seconds)",
		"app", "GPU", "GPU:pre", "GPU:cmp", "CPU", "CPU>GPU", "GPU>CPU", "IO", "runtime", "Tmin", "efficiency", "R")
	for _, s := range AllSetups(o) {
		m, err := s.runDAS5(1, nil)
		if err != nil {
			return "", fmt.Errorf("%s: %w", s.Name, err)
		}
		tmin := model.Tmin(s.Costs, s.App.NumItems())
		t.AddRow(
			s.Name,
			m.Tracer.Busy(trace.ClassGPU).Seconds(),
			m.Tracer.BusyKind(trace.ClassGPU, trace.KindPreprocess).Seconds(),
			m.Tracer.BusyKind(trace.ClassGPU, trace.KindCompare).Seconds(),
			m.Tracer.Busy(trace.ClassCPU).Seconds(),
			m.Tracer.Busy(trace.ClassH2D).Seconds(),
			m.Tracer.Busy(trace.ClassD2H).Seconds(),
			m.Tracer.Busy(trace.ClassIO).Seconds(),
			m.Runtime.Seconds(),
			tmin.Seconds(),
			fmt.Sprintf("%.1f%%", 100*s.Efficiency(m, 1)),
			m.R,
		)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// Fig10 reproduces Fig. 10: per-thread busy time of the forensics
// application on one node when the host cache shrinks from 20 GB to 10 GB
// to 5 GB. Expected shape: all bars grow as the cache shrinks, because
// items are re-loaded more often.
func Fig10(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	slotMB := float64(s.App.ItemSize()) / 1e6
	t := report.NewTable("Fig 10: forensics thread busy time vs host cache size (virtual seconds)",
		"host cache", "slots", "GPU", "CPU", "CPU>GPU", "GPU>CPU", "IO", "runtime", "R")
	for _, gb := range []float64{20, 10, 5} {
		slots := int(gb * 1000 / slotMB / float64(o.Scale))
		if slots < 4 {
			slots = 4
		}
		m, err := s.runDAS5(1, func(cfg *core.Config) { cfg.HostSlots = slots })
		if err != nil {
			return "", fmt.Errorf("cache %vGB: %w", gb, err)
		}
		t.AddRow(
			fmt.Sprintf("%.0f GB/%d", gb, o.Scale),
			slots,
			m.Tracer.Busy(trace.ClassGPU).Seconds(),
			m.Tracer.Busy(trace.ClassCPU).Seconds(),
			m.Tracer.Busy(trace.ClassH2D).Seconds(),
			m.Tracer.Busy(trace.ClassD2H).Seconds(),
			m.Tracer.Busy(trace.ClassIO).Seconds(),
			m.Runtime.Seconds(),
			m.R,
		)
	}
	return t.String(), nil
}
