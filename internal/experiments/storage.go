package experiments

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocket/internal/pairstore"
)

// storageRef is the store namespace of the storage-scaling benchmark's
// dataset lineage.
const storageRef = "benchstore"

// StorageResult is one measured point of the pairstore scaling sweep:
// an all-pairs store built to Pairs entries, sealed, compacted,
// persisted, reloaded (the warm-restart path), and then asked to plan
// a 10% pair delta against a fresh snapshot.
type StorageResult struct {
	Items              int
	Pairs              int64
	DiskBytes          int64
	BytesPerPair       float64
	IndexResidentBytes int64
	// PlanNs is the wall time of the planning probe alone: every base
	// pair resolved against the snapshot, chunked exactly like
	// core.buildStorePlan.
	PlanNs int64
	// PlanHash fingerprints the planned residency bitmap (sha256 of the
	// per-pair outcomes in probe order). Pure function of (ref, seed,
	// items), so it must be identical across runs and platforms.
	PlanHash string
	// Served is the number of base pairs the plan found resident —
	// Pairs, when the store is intact.
	Served       int64
	BloomHitRate float64
	Seals        uint64
	Levels       int
	Segments     int
}

// storageItemsForPairs returns the item count whose all-pairs set is
// the smallest to reach at least pairs.
func storageItemsForPairs(pairs int64) int {
	n := 2
	for int64(n)*int64(n-1)/2 < pairs {
		n++
	}
	return n
}

// MeasureStorage runs one storage point: build an all-pairs store over
// the item count reaching at least pairs, push it through the full
// lifecycle (auto-sealing ingestion → Seal → Compact → Save → Load),
// then plan a 10% delta on the reloaded store. dir receives the
// persisted store (a manifest plus a .segments sidecar); the caller
// owns cleanup.
func MeasureStorage(pairs int64, seed uint64, dir string) (StorageResult, error) {
	items := storageItemsForPairs(pairs)
	digest := pairstore.DigestFunc(storageRef, "storage", seed)

	s := pairstore.New()
	// A bounded memtable forces the ingestion path through auto-seal and
	// tiered compaction instead of building one giant log in memory.
	s.SetAutoSealThreshold(1 << 18)
	for i := 0; i < items; i++ {
		for j := i + 1; j < items; j++ {
			s.Put(pairstore.Entry{Key: pairstore.PairKey(digest, i, j), Version: items})
		}
	}
	s.Seal()
	s.Compact()

	path := filepath.Join(dir, "store.json")
	if err := s.Save(path); err != nil {
		return StorageResult{}, err
	}
	r, err := pairstore.Load(path)
	if err != nil {
		return StorageResult{}, err
	}

	res := StorageResult{Items: items, Pairs: int64(items) * int64(items-1) / 2}
	st := r.Stats()
	res.DiskBytes = st.DiskBytes
	res.BytesPerPair = st.BytesPerPair
	res.IndexResidentBytes = st.IndexResidentBytes
	res.Seals = st.Seals
	res.Levels = st.Levels
	res.Segments = st.Segments

	// Plan a 10% pair delta: the dataset grows ~10% in pairs, and the
	// delta job's plan verifies every base-region pair against the
	// snapshot (the new-vs-all pairs are known absent and skip probing)
	// — the exact probe core.buildStorePlan issues, same chunking, same
	// order. The probe volume is therefore the full base region,
	// independent of the growth factor.
	snap := r.Snapshot()
	const probeChunk = 4096
	keys := make([]pairstore.Key, 0, probeChunk)
	out := make([]bool, probeChunk)
	bits := make([]byte, probeChunk)
	h := sha256.New()
	var served int64
	start := time.Now()
	flush := func() {
		if len(keys) == 0 {
			return
		}
		snap.HasMany(keys, out)
		for k := range keys {
			bits[k] = 0
			if out[k] {
				served++
				bits[k] = 1
			}
		}
		h.Write(bits[:len(keys)])
		keys = keys[:0]
	}
	for i := 0; i < items; i++ {
		for j := i + 1; j < items; j++ {
			keys = append(keys, pairstore.PairKey(digest, i, j))
			if len(keys) == probeChunk {
				flush()
			}
		}
	}
	flush()
	res.PlanNs = time.Since(start).Nanoseconds()
	res.PlanHash = fmt.Sprintf("%x", h.Sum(nil))
	res.Served = served
	res.BloomHitRate = r.Stats().BloomHitRate
	return res, nil
}

// MeasureStorageTemp is MeasureStorage against a throwaway directory.
func MeasureStorageTemp(pairs int64, seed uint64) (StorageResult, error) {
	dir, err := os.MkdirTemp("", "rocket-storage-*")
	if err != nil {
		return StorageResult{}, err
	}
	defer os.RemoveAll(dir)
	return MeasureStorage(pairs, seed, dir)
}
