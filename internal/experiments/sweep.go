package experiments

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) on a pool of o.Shards workers
// (sequentially when Shards <= 1). It is the run-level parallelism behind
// the sweep experiments: each point builds and runs its own simulation
// Env, so execution order cannot influence results — callers must write
// outputs to index-addressed slots and render them after forEach returns,
// which is what keeps every experiment's output byte-identical at every
// width. When several points fail, the lowest-indexed error is returned,
// so the reported failure is also width-independent.
func (o Options) forEach(n int, fn func(i int) error) error {
	workers := o.Shards
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int32
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claim()
		}()
	}
	claim()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
