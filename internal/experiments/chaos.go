package experiments

import (
	"fmt"

	"rocket/internal/fault"
	"rocket/internal/fleet"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// Chaos runs a seeded fault storm — independent crashes with recoveries,
// straggler windows, link cuts and degradations, a cascading failure, and
// a full zone outage — against the fleet workload at engine widths 1, 2,
// 4 and 8. The storm is sampled by fault.ChaosConfig from the experiment
// seed, so the whole exercise is replayable; the table lists the storm's
// composition and the per-width run summary, and the experiment fails
// hard if any width diverges. This is the registry-level witness that
// chaos schedules (with their deliberately colliding timestamps) stay
// inside the engine's determinism contract.
func Chaos(o Options) (string, error) {
	o = o.normalized()
	nodes := 2048 / o.Scale
	if nodes < 64 {
		nodes = 64
	}
	cc := fault.ChaosConfig{
		Seed:     o.Seed,
		Nodes:    nodes,
		Duration: sim.Millis(20),
		Zones:    8,

		CrashFraction:   0.05,
		RestartFraction: 0.5,
		MinDowntime:     sim.Millis(3),
		MaxDowntime:     sim.Millis(8),

		StragglerFraction: 0.03,
		StragglerFactor:   6,
		StragglerWindow:   sim.Millis(5),

		LinkFaults:          8,
		LinkCutFraction:     0.5,
		LinkWindow:          sim.Millis(4),
		LinkLatencyFactor:   10,
		LinkBandwidthFactor: 10,

		CascadeCount:   1,
		CascadeSize:    8,
		CascadeSpacing: sim.Micros(250),

		ZoneOutages:        1,
		ZoneOutageDuration: sim.Millis(5),
	}
	storm, err := cc.Generate()
	if err != nil {
		return "", err
	}

	byKind := map[fault.EventKind]int{}
	for _, ev := range storm.Events {
		byKind[ev.Kind]++
	}

	cfg := fleet.DefaultConfig(nodes)
	cfg.Seed = o.Seed
	cfg.Duration = cc.Duration
	cfg.Faults = storm

	results := make([]fleet.Result, len(shardWidths))
	for i, k := range shardWidths {
		c := cfg
		c.Shards = k
		r, err := fleet.Run(c)
		if err != nil {
			return "", fmt.Errorf("shards=%d: %w", k, err)
		}
		results[i] = r
	}

	t := report.NewTable(
		fmt.Sprintf("Chaos storm: fleet of %d nodes, %v, %d fault events (seed %d)",
			nodes, cfg.Duration, len(storm.Events), o.Seed),
		"shards", "events", "msgs", "dropped", "heartbeats", "work", "state hash")
	for i, r := range results {
		t.AddRow(
			shardWidths[i],
			r.Events,
			r.Messages,
			r.Dropped,
			r.Heartbeats,
			r.WorkDone,
			fmt.Sprintf("%016x", r.StateHash),
		)
		if results[i].String() != results[0].String() {
			return "", fmt.Errorf("chaos: width %d diverged from width 1:\n  %s\n  %s",
				shardWidths[i], results[i], results[0])
		}
	}
	out := t.String()
	out += fmt.Sprintf("storm: crashes=%d restarts=%d gpu=%d link-down=%d link-up=%d link-degrade=%d\n",
		byKind[fault.NodeCrash], byKind[fault.NodeRestart], byKind[fault.GPUSlowdown],
		byKind[fault.LinkDown], byKind[fault.LinkUp], byKind[fault.LinkDegrade])
	out += fmt.Sprintf("invariance: all %d widths byte-identical (%s)\n",
		len(shardWidths), results[0])
	return out, nil
}
