package experiments

import (
	"fmt"

	"rocket/internal/apps/forensics"
	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/pairstore"
	"rocket/internal/report"
)

// incrementalNodes is the platform size of the incremental sweep.
const incrementalNodes = 4

// incrementalRef is the store namespace the experiment's dataset
// lineage uses.
const incrementalRef = "incremental"

// Incremental measures the pair store's warm-start payoff: the
// append-only growth scenario the store exists for. A forensics corpus
// of n items is computed once into a fresh store (the base run), then
// grown by a sweep of append ratios. For each grown size the
// experiment runs the full recomputation (cold, what a store-less
// deployment must do, emitting into a store as the warm-start pipeline
// would) and the delta job (warm: the base region is served from the
// store, only the new-vs-all pair set is computed), and reports the
// pair accounting and the speedup.
//
// Expected shape: the delta job computes exactly k·n + k(k-1)/2 pairs
// for k appended items, pair coverage (computed + served) always
// equals the full set, and — because comparisons dominate this
// workload — the speedup tracks the pair ratio: ≥5x at 10% growth
// (delta is ~17% of the full set), falling toward ~2x at 50% growth.
func Incremental(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	n0 := s.App.NumItems()
	digest := pairstore.DigestFunc(incrementalRef, s.App.Name(), o.Seed)

	// grown builds the same dataset lineage at a larger size: same seed,
	// same per-item scaling, more items — item i is identical in every
	// version, which is what makes the store's content addressing hit.
	grown := func(n int) core.Application {
		return scaledApp{
			Application: forensics.New(forensics.Params{N: n, Seed: o.Seed}),
			Div:         int64(o.Scale),
		}
	}

	platform := func() (*cluster.Cluster, error) { return das5(incrementalNodes) }
	run := func(app core.Application, mutate func(*core.Config)) (*core.Metrics, error) {
		cl, err := platform()
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			App:         app,
			Cluster:     cl,
			DeviceSlots: s.DevSlots,
			HostSlots:   s.HostSlots,
			Seed:        o.Seed,
			DistCache:   true,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return core.Run(cfg)
	}

	// Base run: compute the initial corpus into a fresh store.
	store := pairstore.New()
	batch := pairstore.NewBatch()
	base, err := run(grown(n0), func(cfg *core.Config) {
		cfg.StoreBatch = batch
		cfg.ItemDigest = digest
	})
	if err != nil {
		return "", fmt.Errorf("base run: %w", err)
	}
	store.Merge(batch)

	t := report.NewTable(
		fmt.Sprintf("Incremental: forensics corpus growth on %d nodes, base n=%d (%d pairs in store, computed in %.2f s)",
			incrementalNodes, n0, store.Len(), base.Runtime.Seconds()),
		"append", "n", "full pairs", "delta pairs", "served", "full s", "delta s", "speedup")
	for _, pct := range []int{5, 10, 25, 50} {
		k := n0 * pct / 100
		if k < 1 {
			k = 1
		}
		n1 := n0 + k

		full, err := run(grown(n1), func(cfg *core.Config) {
			cfg.StoreBatch = pairstore.NewBatch()
			cfg.ItemDigest = digest
		})
		if err != nil {
			return "", fmt.Errorf("full n=%d: %w", n1, err)
		}
		delta, err := run(grown(n1), func(cfg *core.Config) {
			cfg.BaseItems = n0
			cfg.Store = store.Snapshot()
			cfg.StoreBatch = pairstore.NewBatch()
			cfg.ItemDigest = digest
		})
		if err != nil {
			return "", fmt.Errorf("delta n=%d: %w", n1, err)
		}
		if got, want := int64(delta.Pairs), pairstore.DeltaPairs(n1, n0); got != want {
			return "", fmt.Errorf("delta n=%d computed %d pairs, want %d", n1, got, want)
		}
		if int64(delta.Pairs+delta.StoreHits) != pairstore.DeltaPairs(n1, 0) {
			return "", fmt.Errorf("delta n=%d covers %d pairs, want %d",
				n1, delta.Pairs+delta.StoreHits, pairstore.DeltaPairs(n1, 0))
		}
		t.AddRow(
			fmt.Sprintf("%d%%", pct),
			n1,
			full.Pairs,
			delta.Pairs,
			delta.StoreHits,
			full.Runtime.Seconds(),
			delta.Runtime.Seconds(),
			fmt.Sprintf("%.2fx", float64(full.Runtime)/float64(delta.Runtime)),
		)
	}
	return t.String(), nil
}
