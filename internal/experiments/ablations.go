package experiments

import (
	"fmt"

	"rocket/internal/cluster"
	"rocket/internal/core"
	"rocket/internal/gpu"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// AblationLeafSize measures the effect of the divide-and-conquer leaf
// threshold (pairs per leaf task) on the forensics workload across 4
// nodes. Tiny leaves stress scheduling overhead; huge leaves reduce
// stealable parallelism.
func AblationLeafSize(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	t := report.NewTable("Ablation: leaf size (forensics, 4 nodes)",
		"leaf pairs", "runtime", "remote steals", "failed steals", "R")
	for _, leaf := range []int64{1, 4, 16, 64, 256} {
		leaf := leaf
		m, err := s.runDAS5(4, func(cfg *core.Config) {
			cfg.DistCache = true
			cfg.LeafPairs = leaf
		})
		if err != nil {
			return "", fmt.Errorf("leaf=%d: %w", leaf, err)
		}
		t.AddRow(leaf, m.Runtime.String(), m.RemoteSteals, m.FailedSteals, m.R)
	}
	return t.String(), nil
}

// AblationJobLimit measures the effect of the concurrent-job limit (the
// paper's back-pressure knob, §4.2) on the bioinformatics workload on one
// node: too few jobs in flight cannot hide cache-miss latency; the
// asynchronous design needs enough jobs to "anticipate" misses (§4.3).
func AblationJobLimit(o Options) (string, error) {
	o = o.normalized()
	s := PhyloSetup(o)
	t := report.NewTable("Ablation: concurrent job limit (bioinformatics, 1 node)",
		"job limit", "runtime", "efficiency", "R")
	for _, limit := range []int{1, 2, 4, 8, 16} {
		limit := limit
		m, err := s.runDAS5(1, func(cfg *core.Config) {
			cfg.ConcurrentJobs = limit
		})
		if err != nil {
			return "", fmt.Errorf("limit=%d: %w", limit, err)
		}
		t.AddRow(m.JobLimit, m.Runtime.String(),
			fmt.Sprintf("%.1f%%", 100*s.Efficiency(m, 1)), m.R)
	}
	return t.String(), nil
}

// AblationStealPolicy compares the paper's hierarchical victim selection
// (same-node workers first, then random remote) against flat
// uniform-random selection and against the §7 future-work cache-aware
// extension (steal requests carry the thief's working set; victims hand
// over the best-overlapping task), on the data-intensive forensics
// workload across 4 two-GPU nodes without the distributed cache, where
// post-steal reuse matters most (victims with several deques give the
// cache-aware policy an actual choice of task).
func AblationStealPolicy(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	policies := []struct {
		name string
		pol  core.StealPolicy
	}{
		{"hierarchical", core.StealHierarchical},
		{"flat-random", core.StealFlat},
		{"cache-aware", core.StealCacheAware},
	}
	specs := make([]cluster.NodeSpec, 4)
	for i := range specs {
		specs[i] = cluster.NodeSpec{
			Cores:          16,
			HostCacheBytes: 40 * gpu.GiB,
			GPUs:           []gpu.Model{gpu.TitanXMaxwell, gpu.TitanXMaxwell},
		}
	}
	t := report.NewTable("Ablation: steal policy (forensics, 4 nodes x 2 GPUs, no distributed cache)",
		"policy", "runtime", "R", "local steals", "remote steals", "failed steals")
	for _, pc := range policies {
		pc := pc
		cl, err := clusterFromSpecs(specs)
		if err != nil {
			return "", err
		}
		m, err := s.run(cl, func(cfg *core.Config) {
			cfg.StealPolicy = pc.pol
		})
		if err != nil {
			return "", fmt.Errorf("policy=%s: %w", pc.name, err)
		}
		t.AddRow(pc.name, m.Runtime.String(), m.R, m.LocalSteals, m.RemoteSteals, m.FailedSteals)
	}
	return t.String(), nil
}

// AblationHops sweeps the distributed-cache hop limit h on 16 nodes for
// the forensics workload, extending Fig. 11 with end-to-end effects.
func AblationHops(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	hops := []int{1, 2, 3}
	metrics := make([]*core.Metrics, len(hops))
	err := o.forEach(len(hops), func(i int) error {
		m, err := s.runDAS5(16, func(cfg *core.Config) {
			cfg.DistCache = true
			cfg.Hops = hops[i]
		})
		if err != nil {
			return fmt.Errorf("h=%d: %w", hops[i], err)
		}
		metrics[i] = m
		return nil
	})
	if err != nil {
		return "", err
	}
	t := report.NewTable("Ablation: distributed-cache hops (forensics, 16 nodes)",
		"h", "runtime", "R", "hit rate", "net GB")
	for i, m := range metrics {
		h := hops[i]
		var hits uint64
		for _, v := range m.DHT.HitAtHop {
			hits += v
		}
		rate := 0.0
		if m.DHT.Requests > 0 {
			rate = float64(hits) / float64(m.DHT.Requests)
		}
		t.AddRow(h, m.Runtime.String(), m.R,
			fmt.Sprintf("%.1f%%", 100*rate), float64(m.NetBytes)/1e9)
	}
	return t.String(), nil
}

// AblationEviction compares LRU eviction (the paper's §4.1.1 policy)
// against random eviction on the data-intensive forensics workload.
// Expected shape: LRU yields lower R (and thus a shorter run) because the
// divide-and-conquer traversal revisits recently used items.
func AblationEviction(o Options) (string, error) {
	o = o.normalized()
	s := ForensicsSetup(o)
	t := report.NewTable("Ablation: cache eviction policy (forensics, 1 node)",
		"policy", "runtime", "R", "efficiency")
	for _, random := range []bool{false, true} {
		random := random
		m, err := s.runDAS5(1, func(cfg *core.Config) {
			cfg.EvictRandom = random
		})
		if err != nil {
			return "", fmt.Errorf("random=%v: %w", random, err)
		}
		name := "LRU"
		if random {
			name = "random"
		}
		t.AddRow(name, m.Runtime.String(), m.R,
			fmt.Sprintf("%.1f%%", 100*s.Efficiency(m, 1)))
	}
	return t.String(), nil
}

// AblationBackoff sweeps the steal backoff interval on the microscopy
// workload to show the scheduler is robust to this tuning parameter.
func AblationBackoff(o Options) (string, error) {
	o = o.normalized()
	s := MicroscopySetup(o)
	t := report.NewTable("Ablation: steal backoff (microscopy, 8 nodes)",
		"backoff", "runtime", "failed steals")
	for _, backoff := range []sim.Time{sim.Micros(10), sim.Micros(100), sim.Millis(1), sim.Millis(10)} {
		backoff := backoff
		m, err := s.runDAS5(8, func(cfg *core.Config) {
			cfg.DistCache = true
			cfg.StealBackoff = backoff
		})
		if err != nil {
			return "", fmt.Errorf("backoff=%v: %w", backoff, err)
		}
		t.AddRow(backoff.String(), m.Runtime.String(), m.FailedSteals)
	}
	return t.String(), nil
}

// AblationPrewarm exercises the §7 persistent-cache extension: host
// caches pre-filled with a fraction of the items a previous run left
// behind. Two regimes are measured. With a host cache large enough to
// keep the working set (the persistent-cache scenario), loads fall in
// proportion to the prewarmed fraction. With the normal, too-small cache,
// prewarmed entries are evicted before reuse and the benefit vanishes —
// the quantitative reason persistence only pays off alongside sufficient
// capacity.
func AblationPrewarm(o Options) (string, error) {
	o = o.normalized()
	s := PhyloSetup(o)
	n := s.App.NumItems()
	t := report.NewTable("Ablation: persistent cache prewarm (bioinformatics, 1 node)",
		"host cache", "prewarm", "runtime", "loads", "R")
	for _, big := range []bool{true, false} {
		for _, frac := range []float64{0, 0.5, 1} {
			big, frac := big, frac
			m, err := s.runDAS5(1, func(cfg *core.Config) {
				cfg.PrewarmHost = frac
				if big {
					cfg.HostSlots = n
				}
			})
			if err != nil {
				return "", fmt.Errorf("big=%v prewarm=%v: %w", big, frac, err)
			}
			size := "full data set"
			if !big {
				size = "paper (scaled)"
			}
			t.AddRow(size, fmt.Sprintf("%.0f%%", 100*frac),
				m.Runtime.String(), m.Loads, m.R)
		}
	}
	return t.String(), nil
}
