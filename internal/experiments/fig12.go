package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/core"
	"rocket/internal/report"
	"rocket/internal/sim"
)

// Fig12 reproduces Fig. 12: speedup, system efficiency, data reuse R, and
// average I/O usage when scaling from 1 to 16 nodes, with the distributed
// cache enabled and disabled. Expected shapes: microscopy scales near
// linearly regardless; forensics and bioinformatics show super-linear
// speedup with the distributed cache (R drops as aggregate memory grows)
// and sub-linear without it, and their I/O usage grows far slower with
// the distributed cache enabled.
func Fig12(o Options) (string, error) {
	o = o.normalized()
	nodeCounts := []int{1, 2, 4, 8, 16}
	type point struct {
		dist  bool
		nodes int
	}
	var points []point
	for _, dist := range []bool{true, false} {
		for _, nodes := range nodeCounts {
			if nodes == 1 && !dist {
				continue // identical to the dist=true single-node run
			}
			points = append(points, point{dist, nodes})
		}
	}
	var b strings.Builder
	for _, s := range AllSetups(o) {
		metrics := make([]*core.Metrics, len(points))
		err := o.forEach(len(points), func(i int) error {
			p := points[i]
			m, err := s.runDAS5(p.nodes, func(cfg *core.Config) {
				cfg.DistCache = p.dist
			})
			if err != nil {
				return fmt.Errorf("%s nodes=%d dist=%v: %w", s.Name, p.nodes, p.dist, err)
			}
			metrics[i] = m
			return nil
		})
		if err != nil {
			return "", err
		}
		t := report.NewTable(
			fmt.Sprintf("Fig 12 (%s): scaling 1-16 nodes", s.Name),
			"nodes", "distcache", "runtime", "speedup", "efficiency", "R", "IO MB/s")
		var base sim.Time
		for i, m := range metrics {
			p := points[i]
			if p.nodes == 1 {
				base = m.Runtime
			}
			ioRate := float64(m.IOBytes) / 1e6 / m.Runtime.Seconds()
			label := onOff(p.dist)
			if p.nodes == 1 {
				label = "n/a"
			}
			t.AddRow(
				p.nodes,
				label,
				m.Runtime.String(),
				fmt.Sprintf("%.2fx", float64(base)/float64(m.Runtime)),
				fmt.Sprintf("%.1f%%", 100*s.Efficiency(m, float64(p.nodes))),
				m.R,
				ioRate,
			)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}
