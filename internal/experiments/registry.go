package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one runnable evaluation artefact.
type Experiment struct {
	// ID is the short identifier used by the CLI and bench names, e.g.
	// "fig12".
	ID string
	// Paper names the corresponding paper artefact.
	Paper string
	// Description summarizes what is measured.
	Description string
	// Run executes the experiment and returns the rendered report.
	Run func(Options) (string, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1", "application characteristics and stage timings", Table1},
		{"fig6", "Fig. 6", "profiling trace timeline and overlap evidence", Fig6},
		{"fig7", "Fig. 7", "comparison-kernel run-time histograms", Fig7},
		{"fig8", "Fig. 8", "per-thread busy time vs T_min, one node", Fig8},
		{"fig9", "Fig. 9", "efficiency and R vs local cache size", Fig9},
		{"fig10", "Fig. 10", "forensics thread busy time vs host cache size", Fig10},
		{"fig11", "Fig. 11", "distributed-cache hits per hop, h=3, 16 nodes", Fig11},
		{"fig12", "Fig. 12", "speedup/efficiency/R/IO scaling to 16 nodes", Fig12},
		{"fig13", "Fig. 13", "heterogeneous platform throughput", Fig13},
		{"fig14", "Fig. 14", "per-GPU throughput over time (microscopy)", Fig14},
		{"fig15", "Fig. 15", "Cartesius scaling to 96 GPUs (bioinformatics)", Fig15},
		{"ablation-leaf", "—", "leaf task size sweep", AblationLeafSize},
		{"ablation-joblimit", "—", "concurrent-job limit sweep", AblationJobLimit},
		{"ablation-steal", "—", "hierarchical vs flat victim selection", AblationStealPolicy},
		{"ablation-hops", "—", "distributed-cache hop-limit sweep", AblationHops},
		{"ablation-eviction", "—", "LRU vs random cache eviction", AblationEviction},
		{"ablation-prewarm", "—", "persistent-cache prewarm fraction sweep", AblationPrewarm},
		{"ablation-backoff", "—", "steal backoff sweep", AblationBackoff},
		{"queue-scaling", "—", "rocketd scheduler: job count x policy sweep", QueueScaling},
		{"resilience", "—", "fault sweep: completion-time inflation vs failure-free", Resilience},
		{"incremental", "—", "pairstore warm start: append-ratio sweep vs full recompute", Incremental},
		{"shardscale", "—", "sharded engine: fleet workload at widths 1-8, invariance-checked", ShardScale},
		{"chaos", "—", "seeded chaos storm over the fleet, invariance-checked at widths 1-8", Chaos},
		{"elasticity", "—", "elastic fleet: churn invariance at widths 1-8 + autoscaler node-hours vs p99 wait", Elasticity},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ids)
}
