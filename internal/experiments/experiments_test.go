package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// tiny runs experiments at an aggressive scale so the full suite stays
// fast; the bench harness runs them at reporting scale.
var tiny = Options{Scale: 50, Seed: 1}

func TestSetupsScale(t *testing.T) {
	o := Options{Scale: 10, Seed: 1}
	f := ForensicsSetup(o)
	if f.App.NumItems() != 498 {
		t.Errorf("forensics n = %d, want 498", f.App.NumItems())
	}
	if f.DevSlots != 29 || f.HostSlots != 105 {
		t.Errorf("forensics slots = %d/%d, want 29/105", f.DevSlots, f.HostSlots)
	}
	m := MicroscopySetup(o)
	if m.App.NumItems() != 256 {
		t.Errorf("microscopy must stay at paper scale, got %d", m.App.NumItems())
	}
	c := CartesiusPhyloSetup(o)
	if c.App.NumItems() != 681 {
		t.Errorf("cartesius n = %d, want 681", c.App.NumItems())
	}
}

func TestDefaultScale(t *testing.T) {
	if got := (Options{}).normalized().Scale; got != 10 {
		t.Fatalf("default scale = %d, want 10", got)
	}
}

func TestSetupByName(t *testing.T) {
	for _, name := range []string{"forensics", "bioinformatics", "microscopy", "bioinformatics-cartesius"} {
		s, err := SetupByName(name, tiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("got %q", s.Name)
		}
	}
	if _, err := SetupByName("nope", tiny); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15"}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Description == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTable1Content(t *testing.T) {
	out, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"forensics", "bioinformatics", "microscopy",
		"no. of pairs", "cache slot size", "N/A"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ShowsIrregularity(t *testing.T) {
	out, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "## Fig 7") != 3 {
		t.Fatalf("expected 3 histograms:\n%s", out)
	}
}

func TestFig8SingleNode(t *testing.T) {
	out, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "efficiency") || !strings.Contains(out, "microscopy") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFig9Sweep(t *testing.T) {
	out, err := Fig9(Options{Scale: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "device-limit") || !strings.Contains(out, "host-limit") {
		t.Fatalf("missing regimes:\n%s", out)
	}
}

func TestFig11Hops(t *testing.T) {
	out, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hit@1") || !strings.Contains(out, "miss") {
		t.Fatalf("missing columns:\n%s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, e := range All() {
		if !strings.HasPrefix(e.ID, "ablation-") {
			continue
		}
		if e.ID == "ablation-steal" || e.ID == "ablation-backoff" {
			continue // microscopy at full n; covered by the bench suite
		}
		out, err := e.Run(tiny)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if !strings.Contains(out, "runtime") {
			t.Errorf("%s output lacks runtime column:\n%s", e.ID, out)
		}
	}
}

func TestQueueScalingReport(t *testing.T) {
	out, err := QueueScaling(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fifo", "sjf", "fair", "mean wait", "util %", "fair-share mean wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("queue-scaling output missing %q:\n%s", want, out)
		}
	}
}

func TestQueueMixIsSkewedAcrossTenantsAndApps(t *testing.T) {
	jobs := QueueMix(16, queueNodes, tiny)
	if len(jobs) != 16 {
		t.Fatalf("len = %d", len(jobs))
	}
	tenants := map[string]int{}
	apps := map[string]bool{}
	for _, j := range jobs {
		tenants[j.Tenant]++
		apps[j.App.Name()] = true
	}
	if tenants["batch"] != 4 || tenants["interactive"] != 12 {
		t.Fatalf("tenant split = %v, want 4 batch / 12 interactive", tenants)
	}
	if len(apps) < 3 {
		t.Fatalf("want all three applications in the mix, got %v", apps)
	}
}

func TestResilienceSweep(t *testing.T) {
	out, err := Resilience(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"failure-free", "crash 1/8", "crash 4/8", "restart",
		"straggler", "cut", "degraded", "inflation", "recovered"} {
		if !strings.Contains(out, want) {
			t.Errorf("resilience output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1.000x") {
		t.Errorf("baseline row must report 1.000x inflation:\n%s", out)
	}
}

// With a fixed seed and fault schedule the resilience experiment must be
// byte-deterministic across runs.
func TestResilienceDeterministic(t *testing.T) {
	a, err := Resilience(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resilience(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("resilience output differs across runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestIncrementalSweep(t *testing.T) {
	out, err := Incremental(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"append", "delta pairs", "served", "speedup", "5%", "10%", "50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("incremental output missing %q:\n%s", want, out)
		}
	}
	// The acceptance bar: at 10% growth the warm-started delta job must
	// be at least 5x faster than the full recompute.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] != "10%" {
			continue
		}
		sp := fields[len(fields)-1]
		var x float64
		if _, err := fmt.Sscanf(sp, "%fx", &x); err != nil {
			t.Fatalf("cannot parse speedup %q: %v", sp, err)
		}
		if x < 5 {
			t.Fatalf("10%% growth speedup %.2fx below the 5x bar:\n%s", x, out)
		}
		return
	}
	t.Fatalf("no 10%% row in output:\n%s", out)
}

func TestIncrementalDeterministic(t *testing.T) {
	a, err := Incremental(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Incremental(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("incremental output differs across runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestElasticityReport(t *testing.T) {
	out, err := Elasticity(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"byte-identical under churn",
		"joins",
		"Autoscaler",
		"fixed",
		"warm",
		"cold",
		"of the fixed-fleet bill at identical p99 wait",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("elasticity report missing %q:\n%s", want, out)
		}
	}
}

func TestElasticityDeterministic(t *testing.T) {
	a, err := Elasticity(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Elasticity(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("elasticity output differs across identical runs")
	}
}
