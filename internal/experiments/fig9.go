package experiments

import (
	"fmt"
	"strings"

	"rocket/internal/core"
	"rocket/internal/report"
)

// Fig9 reproduces Fig. 9: system efficiency and the relative number of
// loads R as functions of the total local cache size on one node. Below
// the device-memory limit the host cache is disabled and only the device
// cache shrinks; above it, the device cache is fixed at its capacity and
// the host cache grows. Expected shapes: microscopy is insensitive (its
// data set always fits); forensics and bioinformatics degrade gracefully,
// with R roughly inversely proportional to cache size.
func Fig9(o Options) (string, error) {
	o = o.normalized()
	var b strings.Builder
	for _, s := range AllSetups(o) {
		points := fig9Points(s)
		metrics := make([]*core.Metrics, len(points))
		err := o.forEach(len(points), func(i int) error {
			devSlots, hostSlots := points[i][0], points[i][1]
			m, err := s.runDAS5(1, func(cfg *core.Config) {
				cfg.DeviceSlots = devSlots
				if hostSlots == 0 {
					cfg.HostSlots = -1
				} else {
					cfg.HostSlots = hostSlots
				}
			})
			if err != nil {
				return fmt.Errorf("%s slots=%v: %w", s.Name, points[i], err)
			}
			metrics[i] = m
			return nil
		})
		if err != nil {
			return "", err
		}
		t := report.NewTable(
			fmt.Sprintf("Fig 9 (%s): efficiency and R vs cache size", s.Name),
			"slots(dev+host)", "regime", "efficiency", "R", "loads")
		for i, m := range metrics {
			devSlots, hostSlots := points[i][0], points[i][1]
			regime := "device-limit"
			if hostSlots > 0 {
				regime = "host-limit"
			}
			t.AddRow(
				fmt.Sprintf("%d+%d", devSlots, hostSlots),
				regime,
				fmt.Sprintf("%.1f%%", 100*s.Efficiency(m, 1)),
				m.R,
				m.Loads,
			)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// fig9Points returns (deviceSlots, hostSlots) sweep points: first the
// device-limit regime (host cache disabled, shrinking device cache), then
// the host-limit regime (device cache at capacity, growing host cache).
func fig9Points(s Setup) [][2]int {
	var pts [][2]int
	seen := map[[2]int]bool{}
	add := func(p [2]int) {
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	for _, f := range []float64{0.1, 0.25, 0.5, 1} {
		d := int(float64(s.DevSlots) * f)
		if d < 4 {
			d = 4
		}
		add([2]int{d, 0})
	}
	for _, f := range []float64{0.25, 0.5, 1} {
		h := int(float64(s.HostSlots) * f)
		if h < 4 {
			h = 4
		}
		add([2]int{s.DevSlots, h})
	}
	return pts
}
