package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestExperimentsShardInvariance is the PR 6 acceptance property: every
// committed experiment renders a byte-identical report (asserted via
// output sha256, the same digest benchgate gates on) at Options.Shards in
// {1, 2, 4, 8}. Shards only widens the worker pool sweep experiments use
// for their independent points — outputs are assembled in point order —
// and the fleet-backed shardscale experiment additionally runs the engine
// itself at widths 1-8 internally, so this test covers both run-level and
// event-level parallelism.
func TestExperimentsShardInvariance(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	if testing.Short() {
		widths = []int{1, 4}
	}
	for _, e := range All() {
		var base string
		for _, w := range widths {
			out, err := e.Run(Options{Scale: 100, Seed: 1, Shards: w})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", e.ID, w, err)
			}
			sum := sha256.Sum256([]byte(out))
			sha := hex.EncodeToString(sum[:])
			if w == widths[0] {
				base = sha
				continue
			}
			if sha != base {
				t.Errorf("%s: output sha at shards=%d (%s) differs from shards=%d (%s)",
					e.ID, w, sha[:12], widths[0], base[:12])
			}
		}
	}
}
