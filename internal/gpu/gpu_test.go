package gpu

import (
	"testing"

	"rocket/internal/sim"
)

func TestModelByName(t *testing.T) {
	m, err := ModelByName("RTX2080Ti")
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != "Turing" {
		t.Errorf("generation = %q", m.Generation)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestModelsHavePositiveSpeeds(t *testing.T) {
	for _, m := range Models() {
		if m.Speed <= 0 || m.MemBytes <= 0 || m.PCIeBW <= 0 {
			t.Errorf("model %q has non-positive parameters: %+v", m.Name, m)
		}
	}
}

func TestBaselineIsTitanXMaxwell(t *testing.T) {
	if TitanXMaxwell.Speed != 1.0 {
		t.Fatalf("baseline speed = %v, want 1.0", TitanXMaxwell.Speed)
	}
}

func TestKernelTimeScaling(t *testing.T) {
	fast := New("t/fast", RTX2080Ti)
	slow := New("t/slow", K20m)
	base := sim.Millis(10)
	if fast.KernelTime(base) >= base {
		t.Errorf("faster GPU must shorten kernels: %v", fast.KernelTime(base))
	}
	if slow.KernelTime(base) <= base {
		t.Errorf("slower GPU must lengthen kernels: %v", slow.KernelTime(base))
	}
	d := New("t/base", TitanXMaxwell)
	if d.KernelTime(base) != base {
		t.Errorf("baseline device changed duration: %v", d.KernelTime(base))
	}
}

func TestTransferTime(t *testing.T) {
	d := New("t/d", TitanXMaxwell)
	// 12 GB at 12 GB/s = 1 s.
	got := d.TransferTime(12e9)
	if got != sim.Second {
		t.Errorf("TransferTime(12e9) = %v, want 1s", got)
	}
}

func TestDeviceResourcesIndependent(t *testing.T) {
	d := New("n0/gpu0", TitanXMaxwell)
	e := sim.NewEnv()
	var kernelEnd, copyEnd sim.Time
	e.Spawn("kernel", func(p *sim.Proc) {
		p.Use(d.Compute, sim.Millis(10))
		kernelEnd = p.Now()
	})
	e.Spawn("copy", func(p *sim.Proc) {
		p.Use(d.H2D, sim.Millis(10))
		copyEnd = p.Now()
	})
	e.Run()
	if kernelEnd != sim.Millis(10) || copyEnd != sim.Millis(10) {
		t.Errorf("compute and copy engines must overlap: kernel %v copy %v", kernelEnd, copyEnd)
	}
}

func TestNewBadModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-speed model")
		}
	}()
	New("x", Model{Name: "broken"})
}

func TestLaunchKernelOccupiesCompute(t *testing.T) {
	e := sim.NewEnv()
	d := New("n0/gpu0", TitanXPascal) // speed 1.65
	base := sim.Millis(33)
	var intervals [][2]sim.Time
	for i := 0; i < 2; i++ {
		d.LaunchKernel(e, base, func(start sim.Time) {
			intervals = append(intervals, [2]sim.Time{start, e.Now()})
		})
	}
	e.Run()
	e.Close()
	dur := d.KernelTime(base)
	want := [][2]sim.Time{{0, dur}, {dur, 2 * dur}}
	for i := range want {
		if intervals[i] != want[i] {
			t.Fatalf("kernel %d occupancy %v, want %v (compute queue must serialize)",
				i, intervals[i], want[i])
		}
	}
	if d.Compute.BusyTime(e.Now()) != 2*dur {
		t.Fatalf("compute busy %v, want %v", d.Compute.BusyTime(e.Now()), 2*dur)
	}
}

func TestCopyEnginesIndependent(t *testing.T) {
	e := sim.NewEnv()
	d := New("n0/gpu0", TitanXMaxwell)
	var h2dEnd, d2hEnd sim.Time
	size := int64(12e9) // 1 second on the default PCIe engine
	d.CopyH2D(e, size, func(sim.Time) { h2dEnd = e.Now() })
	d.CopyD2H(e, size, func(sim.Time) { d2hEnd = e.Now() })
	e.Run()
	e.Close()
	if h2dEnd != sim.Second || d2hEnd != sim.Second {
		t.Fatalf("copies ended at %v / %v, want 1s each (independent engines)", h2dEnd, d2hEnd)
	}
}

func TestThrottleStretchesKernels(t *testing.T) {
	d := New("n/g", TitanXMaxwell)
	e := sim.NewEnv()
	factor := 1.0
	d.SetThrottle(func() float64 { return factor })
	var ends []sim.Time
	d.LaunchKernel(e, sim.Millis(10), func(sim.Time) { ends = append(ends, e.Now()) })
	factor = 4
	d.LaunchKernel(e, sim.Millis(10), func(sim.Time) { ends = append(ends, e.Now()) })
	factor = 0.25 // below 1 clamps to full speed
	d.LaunchKernel(e, sim.Millis(10), func(sim.Time) { ends = append(ends, e.Now()) })
	e.Run()
	e.Close()
	want := []sim.Time{sim.Millis(10), sim.Millis(50), sim.Millis(60)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("kernel %d ended at %v, want %v (ends=%v)", i, ends[i], want[i], ends)
		}
	}
	d.SetThrottle(nil)
	if d.slowdown() != 1 {
		t.Fatal("nil throttle must mean full speed")
	}
}
