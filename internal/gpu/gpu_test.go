package gpu

import (
	"testing"

	"rocket/internal/sim"
)

func TestModelByName(t *testing.T) {
	m, err := ModelByName("RTX2080Ti")
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != "Turing" {
		t.Errorf("generation = %q", m.Generation)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestModelsHavePositiveSpeeds(t *testing.T) {
	for _, m := range Models() {
		if m.Speed <= 0 || m.MemBytes <= 0 || m.PCIeBW <= 0 {
			t.Errorf("model %q has non-positive parameters: %+v", m.Name, m)
		}
	}
}

func TestBaselineIsTitanXMaxwell(t *testing.T) {
	if TitanXMaxwell.Speed != 1.0 {
		t.Fatalf("baseline speed = %v, want 1.0", TitanXMaxwell.Speed)
	}
}

func TestKernelTimeScaling(t *testing.T) {
	fast := New("t/fast", RTX2080Ti)
	slow := New("t/slow", K20m)
	base := sim.Millis(10)
	if fast.KernelTime(base) >= base {
		t.Errorf("faster GPU must shorten kernels: %v", fast.KernelTime(base))
	}
	if slow.KernelTime(base) <= base {
		t.Errorf("slower GPU must lengthen kernels: %v", slow.KernelTime(base))
	}
	d := New("t/base", TitanXMaxwell)
	if d.KernelTime(base) != base {
		t.Errorf("baseline device changed duration: %v", d.KernelTime(base))
	}
}

func TestTransferTime(t *testing.T) {
	d := New("t/d", TitanXMaxwell)
	// 12 GB at 12 GB/s = 1 s.
	got := d.TransferTime(12e9)
	if got != sim.Second {
		t.Errorf("TransferTime(12e9) = %v, want 1s", got)
	}
}

func TestDeviceResourcesIndependent(t *testing.T) {
	d := New("n0/gpu0", TitanXMaxwell)
	e := sim.NewEnv()
	var kernelEnd, copyEnd sim.Time
	e.Spawn("kernel", func(p *sim.Proc) {
		p.Use(d.Compute, sim.Millis(10))
		kernelEnd = p.Now()
	})
	e.Spawn("copy", func(p *sim.Proc) {
		p.Use(d.H2D, sim.Millis(10))
		copyEnd = p.Now()
	})
	e.Run()
	if kernelEnd != sim.Millis(10) || copyEnd != sim.Millis(10) {
		t.Errorf("compute and copy engines must overlap: kernel %v copy %v", kernelEnd, copyEnd)
	}
}

func TestNewBadModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-speed model")
		}
	}()
	New("x", Model{Name: "broken"})
}
