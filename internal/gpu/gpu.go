// Package gpu models the GPU devices of the evaluation platforms. Rocket
// treats kernels as black boxes (paper §5), so a device is fully described
// by its relative compute speed, usable memory, and PCIe copy bandwidth.
// Kernel and transfer durations are charged on simulated resources: one
// compute queue plus dedicated host-to-device and device-to-host copy
// engines per device, matching the paper's one-thread-per-engine design
// (§4.3).
package gpu

import (
	"fmt"

	"rocket/internal/sim"
)

// Model describes a GPU product. Speed is relative throughput with the
// NVIDIA TitanX Maxwell (the paper's single-node baseline) at 1.0.
type Model struct {
	Name       string
	Generation string
	// Speed scales kernel durations: duration = base / Speed.
	Speed float64
	// MemBytes is usable device memory for the level-1 cache.
	MemBytes int64
	// PCIeBW is the copy-engine bandwidth in bytes/second (each direction
	// has its own engine).
	PCIeBW float64
}

// GiB is 2^30 bytes.
const GiB = int64(1) << 30

const defaultPCIe = 12e9 // ~PCIe 3.0 x16 effective

// The GPU models used across the paper's platforms (§6.2, §6.5, §6.6).
// Speeds are set from relative single-precision throughput of the products.
var (
	TitanXMaxwell = Model{Name: "TitanX-Maxwell", Generation: "Maxwell", Speed: 1.00, MemBytes: 11 * GiB, PCIeBW: defaultPCIe}
	K20m          = Model{Name: "K20m", Generation: "Kepler", Speed: 0.45, MemBytes: 4 * GiB, PCIeBW: defaultPCIe}
	GTXTitan      = Model{Name: "GTX-Titan", Generation: "Kepler", Speed: 0.55, MemBytes: 5 * GiB, PCIeBW: defaultPCIe}
	GTX980        = Model{Name: "GTX980", Generation: "Maxwell", Speed: 0.70, MemBytes: 4 * GiB, PCIeBW: defaultPCIe}
	TitanXPascal  = Model{Name: "TitanX-Pascal", Generation: "Pascal", Speed: 1.65, MemBytes: 11 * GiB, PCIeBW: defaultPCIe}
	RTX2080Ti     = Model{Name: "RTX2080Ti", Generation: "Turing", Speed: 2.05, MemBytes: 10 * GiB, PCIeBW: defaultPCIe}
	K40m          = Model{Name: "K40m", Generation: "Kepler", Speed: 0.65, MemBytes: 11 * GiB, PCIeBW: defaultPCIe}
)

// Models returns all known models, for lookups and CLI listings.
func Models() []Model {
	return []Model{TitanXMaxwell, K20m, GTXTitan, GTX980, TitanXPascal, RTX2080Ti, K40m}
}

// ModelByName returns the model with the given name.
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("gpu: unknown model %q", name)
}

// Device is one simulated GPU installed in a node.
type Device struct {
	Model
	// ID names the device for traces, e.g. "node3/gpu1".
	ID string
	// Compute serializes kernel launches (a single CUDA stream).
	Compute *sim.Resource
	// H2D and D2H are the two copy engines.
	H2D *sim.Resource
	D2H *sim.Resource
	// throttle, when set, reports the current straggler factor (>= 1)
	// multiplying kernel durations; nil means full speed. PCIe copies are
	// unaffected (thermal throttling slows the SMs, not the bus).
	throttle func() float64
}

// SetThrottle installs a straggler hook: every kernel launched afterwards
// takes fn() times its nominal duration (fn must return >= 1; values below
// are clamped). Passing nil restores full speed. Fault injection uses this
// to model per-device slowdowns over windows of virtual time.
func (d *Device) SetThrottle(fn func() float64) { d.throttle = fn }

// slowdown returns the current straggler factor.
func (d *Device) slowdown() float64 {
	if d.throttle == nil {
		return 1
	}
	if f := d.throttle(); f > 1 {
		return f
	}
	return 1
}

// New returns a device with fresh resources.
func New(id string, m Model) *Device {
	if m.Speed <= 0 {
		panic(fmt.Sprintf("gpu: model %q has non-positive speed", m.Name))
	}
	return &Device{
		Model:   m,
		ID:      id,
		Compute: sim.NewResource(id+"/compute", 1),
		H2D:     sim.NewResource(id+"/h2d", 1),
		D2H:     sim.NewResource(id+"/d2h", 1),
	}
}

// KernelTime converts a baseline kernel duration (measured on the TitanX
// Maxwell) into this device's duration.
func (d *Device) KernelTime(base sim.Time) sim.Time {
	return sim.Time(float64(base) / d.Speed)
}

// TransferTime returns the PCIe copy duration for size bytes.
func (d *Device) TransferTime(size int64) sim.Time {
	return sim.Seconds(float64(size) / d.PCIeBW)
}

// LaunchKernel occupies the compute queue for a baseline duration scaled
// by the device speed, then calls fn with the grant time (the occupancy
// ran [start, e.Now()]). Like a real asynchronous kernel launch it never
// blocks the caller: queueing, execution, and completion run as a
// zero-allocation callback chain in the simulator, with no goroutine per
// launch. fn must not block.
func (d *Device) LaunchKernel(e *sim.Env, base sim.Time, fn func(start sim.Time)) {
	dur := d.KernelTime(base)
	if f := d.slowdown(); f != 1 {
		dur = sim.Time(float64(dur) * f)
	}
	d.Compute.UseFunc(e, dur, fn)
}

// CopyH2D occupies the host-to-device copy engine for size bytes, then
// calls fn with the grant time. See LaunchKernel.
func (d *Device) CopyH2D(e *sim.Env, size int64, fn func(start sim.Time)) {
	d.H2D.UseFunc(e, d.TransferTime(size), fn)
}

// CopyD2H occupies the device-to-host copy engine for size bytes, then
// calls fn with the grant time. See LaunchKernel.
func (d *Device) CopyD2H(e *sim.Env, size int64, fn func(start sim.Time)) {
	d.D2H.UseFunc(e, d.TransferTime(size), fn)
}
