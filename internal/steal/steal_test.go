package steal

import (
	"testing"
	"testing/quick"

	"rocket/internal/pairs"
	"rocket/internal/stats"
)

func region(n int) pairs.Region { return pairs.Root(n) }

func TestDequeLIFOBottomFIFOTop(t *testing.T) {
	d := &Deque{}
	d.PushBottom(region(2))
	d.PushBottom(region(3))
	d.PushBottom(region(4))
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if r, ok := d.PopBottom(); !ok || r != region(4) {
		t.Fatalf("PopBottom = %v, %v; want most recent", r, ok)
	}
	if r, ok := d.StealTop(); !ok || r != region(2) {
		t.Fatalf("StealTop = %v, %v; want oldest", r, ok)
	}
	if r, ok := d.PopBottom(); !ok || r != region(3) {
		t.Fatalf("PopBottom = %v, %v", r, ok)
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestPeekTopCount(t *testing.T) {
	d := &Deque{}
	if d.PeekTopCount() != 0 {
		t.Fatal("empty deque peek != 0")
	}
	d.PushBottom(region(10)) // 45 pairs
	d.PushBottom(region(2))  // 1 pair
	if d.PeekTopCount() != 45 {
		t.Fatalf("PeekTopCount = %d, want 45 (top is oldest)", d.PeekTopCount())
	}
}

func TestGroupStealLocalPicksLargest(t *testing.T) {
	g := NewGroup(3)
	g.Deque(0).PushBottom(region(4))  // 6 pairs
	g.Deque(1).PushBottom(region(20)) // 190 pairs
	g.Deque(2).PushBottom(region(8))  // 28 pairs
	r, ok := g.StealLocal(2)          // thief is worker 2
	if !ok || r != region(20) {
		t.Fatalf("StealLocal = %v, %v; want the largest task", r, ok)
	}
	if g.Deque(1).Len() != 0 {
		t.Fatal("stolen task still queued")
	}
}

func TestGroupStealLocalSkipsThief(t *testing.T) {
	g := NewGroup(2)
	g.Deque(0).PushBottom(region(50))
	if _, ok := g.StealLocal(0); ok {
		t.Fatal("worker stole from itself")
	}
	if r, ok := g.StealLocal(1); !ok || r != region(50) {
		t.Fatalf("other worker failed to steal: %v %v", r, ok)
	}
}

func TestGroupStealLocalAllConsidersEvery(t *testing.T) {
	g := NewGroup(2)
	g.Deque(0).PushBottom(region(5))
	if r, ok := g.StealLocal(-1); !ok || r != region(5) {
		t.Fatalf("StealLocal(-1) = %v, %v", r, ok)
	}
}

func TestGroupEmptySteal(t *testing.T) {
	g := NewGroup(4)
	if _, ok := g.StealLocal(-1); ok {
		t.Fatal("steal from empty group succeeded")
	}
	if g.QueuedTasks() != 0 || g.Size() != 4 {
		t.Fatal("accounting wrong")
	}
}

// Property: any interleaving of pushes, pops, and steals conserves tasks
// (no loss, no duplication) and total pair count.
func TestQuickConservation(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		rng := stats.NewRNG(seed)
		g := NewGroup(3)
		ops := int(opsRaw) + 20
		pushed := map[pairs.Region]int{}
		removed := map[pairs.Region]int{}
		next := 2
		for k := 0; k < ops; k++ {
			w := rng.Intn(3)
			switch rng.Intn(3) {
			case 0:
				r := pairs.Region{RowLo: 0, RowHi: next, ColLo: 0, ColHi: next}
				next++
				g.Deque(w).PushBottom(r)
				pushed[r]++
			case 1:
				if r, ok := g.Deque(w).PopBottom(); ok {
					removed[r]++
				}
			case 2:
				if r, ok := g.StealLocal(w); ok {
					removed[r]++
				}
			}
		}
		// Drain the rest.
		for i := 0; i < g.Size(); i++ {
			for {
				r, ok := g.Deque(i).PopBottom()
				if !ok {
					break
				}
				removed[r]++
			}
		}
		if len(pushed) != len(removed) {
			return false
		}
		for r, c := range pushed {
			if removed[r] != c {
				return false
			}
		}
		return g.QueuedTasks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the backing-array leak: StealTop used to re-slice
// (tasks = tasks[1:]), so sustained push/steal cycles walked the slice
// ever deeper into a backing array that append then had to regrow without
// bound. With the head index + compaction, capacity must stay proportional
// to the high-water queue depth, not the cycle count.
func TestStealTopBoundedCapacity(t *testing.T) {
	d := &Deque{}
	const depth = 8
	for k := 0; k < 100000; k++ {
		for i := 0; i < depth; i++ {
			d.PushBottom(region(i + 2))
		}
		for i := 0; i < depth; i++ {
			if _, ok := d.StealTop(); !ok {
				t.Fatal("steal failed")
			}
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after balanced cycles", d.Len())
	}
	// The bound below is generous (compaction keeps the live window plus a
	// dead prefix of at most compactAt + live); the pre-fix behavior grows
	// into the thousands.
	if c := cap(d.tasks); c > 4*(depth+compactAt) {
		t.Fatalf("backing array grew to cap %d under push/steal cycles", c)
	}
}

// Mixed steal/pop cycles with a persistent backlog must also keep the
// backing array bounded, and preserve FIFO/LIFO order across compactions.
func TestStealTopCompactionPreservesOrder(t *testing.T) {
	d := &Deque{}
	next := 2
	for i := 0; i < 40; i++ { // persistent backlog straddling compactAt
		d.PushBottom(region(next))
		next++
	}
	expectTop := 2
	for k := 0; k < 50000; k++ {
		d.PushBottom(region(next))
		next++
		if r, ok := d.StealTop(); !ok || r != region(expectTop) {
			t.Fatalf("cycle %d: StealTop = %v, want %v", k, r, region(expectTop))
		}
		expectTop++
	}
	if d.Len() != 40 {
		t.Fatalf("backlog length = %d, want 40", d.Len())
	}
	if c := cap(d.tasks); c > 4*(40+compactAt) {
		t.Fatalf("backing array grew to cap %d", c)
	}
	// The remaining backlog must drain bottom-first in push order.
	if r, ok := d.PopBottom(); !ok || r != region(next-1) {
		t.Fatalf("PopBottom = %v, want %v", r, region(next-1))
	}
}

func TestGroupDrain(t *testing.T) {
	g := NewGroup(2)
	g.Deque(0).PushBottom(region(3))
	g.Deque(0).PushBottom(region(4))
	g.Deque(1).PushBottom(region(5))
	got := g.Drain()
	want := []pairs.Region{region(3), region(4), region(5)}
	if len(got) != len(want) {
		t.Fatalf("Drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if g.QueuedTasks() != 0 {
		t.Fatal("group not empty after Drain")
	}
}

func TestStealBestOverlapPrefersResidentItems(t *testing.T) {
	g := NewGroup(2)
	// Deque 0's top covers items 0-9; deque 1's top covers items 100-109.
	g.Deque(0).PushBottom(pairs.Region{RowLo: 0, RowHi: 10, ColLo: 0, ColHi: 10})
	g.Deque(1).PushBottom(pairs.Region{RowLo: 100, RowHi: 110, ColLo: 100, ColHi: 110})
	r, ok := g.StealBestOverlap([]int{103, 105, 200})
	if !ok || r.RowLo != 100 {
		t.Fatalf("StealBestOverlap = %v, %v; want the 100-range task", r, ok)
	}
	// No overlap anywhere: falls back to the largest task.
	g2 := NewGroup(2)
	g2.Deque(0).PushBottom(pairs.Root(4))
	g2.Deque(1).PushBottom(pairs.Root(20))
	r2, ok := g2.StealBestOverlap([]int{999})
	if !ok || r2 != pairs.Root(20) {
		t.Fatalf("no-overlap fallback = %v, %v; want largest", r2, ok)
	}
	// Empty group.
	if _, ok := NewGroup(1).StealBestOverlap([]int{1}); ok {
		t.Fatal("stole from empty group")
	}
}

func TestStealBestOverlapEmptyGroup(t *testing.T) {
	g := NewGroup(0)
	if _, ok := g.StealBestOverlap([]int{1, 2, 3}); ok {
		t.Fatal("steal from a group with no workers succeeded")
	}
}

func TestStealBestOverlapAllEmptyDeques(t *testing.T) {
	g := NewGroup(3)
	if _, ok := g.StealBestOverlap([]int{1, 2, 3}); ok {
		t.Fatal("steal from all-empty deques succeeded")
	}
	if _, ok := g.StealBestOverlap(nil); ok {
		t.Fatal("steal with no resident set from empty deques succeeded")
	}
}

func TestStealBestOverlapTieBreaksTowardLargerTask(t *testing.T) {
	g := NewGroup(2)
	// Both top tasks cover items the thief has resident (overlap ties);
	// the larger region must win.
	g.Deque(0).PushBottom(region(4))  // items 0..3, 6 pairs
	g.Deque(1).PushBottom(region(12)) // items 0..11, 66 pairs
	resident := []int{0, 1, 2, 3}     // fully inside both regions: equal overlap
	r, ok := g.StealBestOverlap(resident)
	if !ok || r != region(12) {
		t.Fatalf("StealBestOverlap = %v, %v; want the larger of the tied tasks", r, ok)
	}
	if g.Deque(1).Len() != 0 {
		t.Fatal("stolen task still queued")
	}
}

func TestStealBestOverlapZeroOverlapDegradesToLargest(t *testing.T) {
	g := NewGroup(2)
	g.Deque(0).PushBottom(region(4))
	g.Deque(1).PushBottom(region(8))
	// Resident items outside every queued region: overlap is 0 for all,
	// so the steal must still succeed and take the largest task.
	r, ok := g.StealBestOverlap([]int{100, 101})
	if !ok || r != region(8) {
		t.Fatalf("StealBestOverlap = %v, %v; want largest task on zero overlap", r, ok)
	}
}

func TestStealBestOverlapPrefersOverlapOverSize(t *testing.T) {
	g := NewGroup(2)
	sub := pairs.Root(64).Split() // quadrants with distinct item ranges
	g.Deque(0).PushBottom(sub[0]) // low items
	g.Deque(1).PushBottom(region(8))
	// Resident set matches deque 0's quadrant items; even if another
	// task were larger, the overlapping one must win.
	r, ok := g.StealBestOverlap([]int{0, 1, 2, 3, 4, 5})
	if !ok || r != sub[0] {
		t.Fatalf("StealBestOverlap = %v, %v; want the overlapping task %v", r, ok, sub[0])
	}
}
