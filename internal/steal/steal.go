// Package steal implements the work-stealing structures of Rocket's
// scheduler (paper §4.2): per-worker task deques holding regions of the
// pair matrix, with LIFO local access (best locality: deepest task first)
// and FIFO stealing (most work per steal: the largest task first), plus the
// node-level policy of stealing from a same-node worker before going to a
// remote node.
package steal

import (
	"rocket/internal/pairs"
)

// Deque is a double-ended task queue owned by one worker. The owning
// worker pushes and pops at the bottom; thieves steal from the top. The
// simulation is single-threaded, so no synchronization is needed — the
// contract matches Cilk/Constellation semantics, not lock-free mechanics.
type Deque struct {
	tasks []pairs.Region
}

// Len returns the number of queued tasks.
func (d *Deque) Len() int { return len(d.tasks) }

// PushBottom adds a task at the worker end.
func (d *Deque) PushBottom(r pairs.Region) {
	d.tasks = append(d.tasks, r)
}

// PopBottom removes and returns the most recently pushed task (LIFO),
// which is the deepest, most local task.
func (d *Deque) PopBottom() (pairs.Region, bool) {
	if len(d.tasks) == 0 {
		return pairs.Region{}, false
	}
	r := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return r, true
}

// StealTop removes and returns the oldest task (FIFO), which sits highest
// in the divide-and-conquer tree and therefore represents the most work.
func (d *Deque) StealTop() (pairs.Region, bool) {
	if len(d.tasks) == 0 {
		return pairs.Region{}, false
	}
	r := d.tasks[0]
	d.tasks = d.tasks[1:]
	return r, true
}

// PeekTopCount returns the pair count of the top task, or 0 if empty.
func (d *Deque) PeekTopCount() int64 {
	if len(d.tasks) == 0 {
		return 0
	}
	return d.tasks[0].Count()
}

// Group is the set of deques of one node's workers (one worker per GPU).
type Group struct {
	deques []*Deque
}

// NewGroup returns a group with n empty deques.
func NewGroup(n int) *Group {
	g := &Group{deques: make([]*Deque, n)}
	for i := range g.deques {
		g.deques[i] = &Deque{}
	}
	return g
}

// Deque returns worker i's deque.
func (g *Group) Deque(i int) *Deque { return g.deques[i] }

// Size returns the number of workers in the group.
func (g *Group) Size() int { return len(g.deques) }

// QueuedTasks returns the total number of tasks across the group.
func (g *Group) QueuedTasks() int {
	total := 0
	for _, d := range g.deques {
		total += d.Len()
	}
	return total
}

// StealBestOverlap steals the top task whose item ranges overlap the
// thief's resident items (ascending, distinct) the most — the paper's
// §7 cache-aware stealing extension. Ties are broken towards the larger
// task; with no overlap anywhere it degrades to StealLocal semantics.
func (g *Group) StealBestOverlap(resident []int) (pairs.Region, bool) {
	best := -1
	bestOverlap := -1
	var bestCount int64
	for i, d := range g.deques {
		if d.Len() == 0 {
			continue
		}
		top := d.tasks[0]
		overlap := top.OverlapCount(resident)
		count := top.Count()
		if overlap > bestOverlap || (overlap == bestOverlap && count > bestCount) {
			best, bestOverlap, bestCount = i, overlap, count
		}
	}
	if best < 0 {
		return pairs.Region{}, false
	}
	return g.deques[best].StealTop()
}

// StealLocal steals the largest top task from any deque in the group other
// than the thief's own (pass except = -1 to consider all, as when serving
// a remote thief). It returns false if every other deque is empty.
func (g *Group) StealLocal(except int) (pairs.Region, bool) {
	best := -1
	var bestCount int64
	for i, d := range g.deques {
		if i == except {
			continue
		}
		if c := d.PeekTopCount(); c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return pairs.Region{}, false
	}
	return g.deques[best].StealTop()
}
