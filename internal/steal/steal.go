// Package steal implements the work-stealing structures of Rocket's
// scheduler (paper §4.2): per-worker task deques holding regions of the
// pair matrix, with LIFO local access (best locality: deepest task first)
// and FIFO stealing (most work per steal: the largest task first), plus the
// node-level policy of stealing from a same-node worker before going to a
// remote node.
package steal

import (
	"rocket/internal/pairs"
)

// Deque is a double-ended task queue owned by one worker. The owning
// worker pushes and pops at the bottom; thieves steal from the top. The
// simulation is single-threaded, so no synchronization is needed — the
// contract matches Cilk/Constellation semantics, not lock-free mechanics.
//
// Storage is a slice with an explicit head index. StealTop advances head
// instead of re-slicing (tasks = tasks[1:] would walk the slice ever
// deeper into its backing array, forcing append to reallocate and grow it
// without bound under sustained push/steal cycles); the occupied window is
// compacted back to the front once the dead prefix dominates, so capacity
// stays proportional to the high-water queue depth.
type Deque struct {
	tasks []pairs.Region
	head  int
}

// compactAt is the dead-prefix length beyond which StealTop shifts the
// live window back to the front of the backing array. Compaction copies at
// most as many elements as were stolen since the last one, so the
// amortized cost per steal is O(1).
const compactAt = 32

// Len returns the number of queued tasks.
func (d *Deque) Len() int { return len(d.tasks) - d.head }

// PushBottom adds a task at the worker end.
func (d *Deque) PushBottom(r pairs.Region) {
	d.tasks = append(d.tasks, r)
}

// PopBottom removes and returns the most recently pushed task (LIFO),
// which is the deepest, most local task.
func (d *Deque) PopBottom() (pairs.Region, bool) {
	if d.Len() == 0 {
		return pairs.Region{}, false
	}
	r := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return r, true
}

// StealTop removes and returns the oldest task (FIFO), which sits highest
// in the divide-and-conquer tree and therefore represents the most work.
func (d *Deque) StealTop() (pairs.Region, bool) {
	if d.Len() == 0 {
		return pairs.Region{}, false
	}
	r := d.tasks[d.head]
	d.head++
	switch {
	case d.head == len(d.tasks):
		d.tasks = d.tasks[:0]
		d.head = 0
	case d.head >= compactAt && d.head*2 >= len(d.tasks):
		n := copy(d.tasks, d.tasks[d.head:])
		d.tasks = d.tasks[:n]
		d.head = 0
	}
	return r, true
}

// top returns the oldest queued task; it must not be called on an empty
// deque.
func (d *Deque) top() pairs.Region { return d.tasks[d.head] }

// PeekTopCount returns the pair count of the top task, or 0 if empty.
func (d *Deque) PeekTopCount() int64 {
	if d.Len() == 0 {
		return 0
	}
	return d.top().Count()
}

// Group is the set of deques of one node's workers (one worker per GPU).
type Group struct {
	deques []*Deque
}

// NewGroup returns a group with n empty deques.
func NewGroup(n int) *Group {
	g := &Group{deques: make([]*Deque, n)}
	for i := range g.deques {
		g.deques[i] = &Deque{}
	}
	return g
}

// Deque returns worker i's deque.
func (g *Group) Deque(i int) *Deque { return g.deques[i] }

// Size returns the number of workers in the group.
func (g *Group) Size() int { return len(g.deques) }

// QueuedTasks returns the total number of tasks across the group.
func (g *Group) QueuedTasks() int {
	total := 0
	for _, d := range g.deques {
		total += d.Len()
	}
	return total
}

// Drain removes and returns every queued task in the group, deque by
// deque in top-to-bottom (FIFO) order. Crash recovery uses it to re-expose
// a dead node's unfinished regions for stealing elsewhere.
func (g *Group) Drain() []pairs.Region {
	var out []pairs.Region
	for _, d := range g.deques {
		for {
			r, ok := d.StealTop()
			if !ok {
				break
			}
			out = append(out, r)
		}
	}
	return out
}

// StealBestOverlap steals the top task whose item ranges overlap the
// thief's resident items (ascending, distinct) the most — the paper's
// §7 cache-aware stealing extension. Ties are broken towards the larger
// task; with no overlap anywhere it degrades to StealLocal semantics.
func (g *Group) StealBestOverlap(resident []int) (pairs.Region, bool) {
	best := -1
	bestOverlap := -1
	var bestCount int64
	for i, d := range g.deques {
		if d.Len() == 0 {
			continue
		}
		top := d.top()
		overlap := top.OverlapCount(resident)
		count := top.Count()
		if overlap > bestOverlap || (overlap == bestOverlap && count > bestCount) {
			best, bestOverlap, bestCount = i, overlap, count
		}
	}
	if best < 0 {
		return pairs.Region{}, false
	}
	return g.deques[best].StealTop()
}

// StealLocal steals the largest top task from any deque in the group other
// than the thief's own (pass except = -1 to consider all, as when serving
// a remote thief). It returns false if every other deque is empty.
func (g *Group) StealLocal(except int) (pairs.Region, bool) {
	best := -1
	var bestCount int64
	for i, d := range g.deques {
		if i == except {
			continue
		}
		if c := d.PeekTopCount(); c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return pairs.Region{}, false
	}
	return g.deques[best].StealTop()
}
